//! The evaluation engine: one implementation of XPath semantics over any
//! [`AxisProvider`].

use std::cell::Cell;
use std::fmt;

use xmldom::{Document, NodeId, NodeKind};

use crate::ast::{Axis, CmpOp, Expr, LocationPath, NodeTest, Step, Value};
use crate::axes::AxisProvider;

/// Evaluation failure (unsupported constructs of the subset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// An attribute step appeared somewhere other than the end of a
    /// predicate path (attribute nodes are not materialized).
    AttributeStep,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::AttributeStep => write!(
                f,
                "attribute steps are only supported at the end of predicate paths"
            ),
        }
    }
}

impl std::error::Error for EvalError {}

/// Result of evaluating a path that may end in an attribute step.
enum PathValues {
    Nodes(Vec<NodeId>),
    Strings(Vec<String>),
}

/// Per-axis location-step counters accumulated by an [`Evaluator`]
/// (one count per step application, including the `//name` collapsed
/// form, which counts as a `descendant` step).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepStats {
    /// Steps evaluated per axis, indexed by [`Axis::index`].
    pub steps: [u64; Axis::COUNT],
}

impl StepStats {
    /// Total steps across all axes.
    pub fn total(&self) -> u64 {
        self.steps.iter().sum()
    }

    /// Steps evaluated on one axis.
    pub fn of(&self, axis: Axis) -> u64 {
        self.steps[axis.index()]
    }
}

/// An XPath evaluator over one document and one axis provider.
pub struct Evaluator<'a, A: AxisProvider> {
    doc: &'a Document,
    axes: A,
    // Cells, not atomics: evaluation is single-threaded per evaluator and
    // the counters must not cost a shared-cache-line bounce per step.
    steps: [Cell<u64>; Axis::COUNT],
}

impl<'a, A: AxisProvider> Evaluator<'a, A> {
    /// Creates an evaluator.
    pub fn new(doc: &'a Document, axes: A) -> Self {
        Evaluator { doc, axes, steps: std::array::from_fn(|_| Cell::new(0)) }
    }

    /// The underlying axis provider.
    pub fn axes(&self) -> &A {
        &self.axes
    }

    /// Per-axis step counts accumulated over every evaluation run on this
    /// evaluator so far.
    pub fn step_stats(&self) -> StepStats {
        StepStats { steps: std::array::from_fn(|i| self.steps[i].get()) }
    }

    fn bump(&self, axis: Axis) {
        let c = &self.steps[axis.index()];
        c.set(c.get() + 1);
    }

    /// Evaluates a location path. Absolute paths ignore `context` and start
    /// at the root element. The result is in document order without
    /// duplicates.
    pub fn evaluate(&self, path: &LocationPath, context: NodeId) -> Result<Vec<NodeId>, EvalError> {
        match self.eval_path(path, context)? {
            PathValues::Nodes(nodes) => Ok(nodes),
            PathValues::Strings(_) => Err(EvalError::AttributeStep),
        }
    }

    /// Convenience: parse-and-evaluate from the root element.
    pub fn query(&self, xpath: &str) -> Result<Vec<NodeId>, String> {
        let path = crate::parse(xpath).map_err(|e| e.to_string())?;
        let root = self.doc.root_element().unwrap_or_else(|| self.doc.root());
        self.evaluate(&path, root).map_err(|e| e.to_string())
    }

    /// Applies a step sequence to an explicit context node-set — the
    /// plan-execution hook: a query planner that answered a structural
    /// prefix from an index hands the remaining steps (and its
    /// intermediate node-set) back to the evaluator here, which keeps the
    /// fallback semantics byte-identical to a full step-by-step run.
    ///
    /// `context` must be in document order without duplicates (the
    /// invariant every step maintains). An attribute step anywhere but the
    /// end of a predicate path is rejected, exactly like
    /// [`Evaluator::evaluate`].
    pub fn evaluate_steps(
        &self,
        steps: &[Step],
        context: Vec<NodeId>,
    ) -> Result<Vec<NodeId>, EvalError> {
        match self.eval_steps_values(steps, context)? {
            PathValues::Nodes(nodes) => Ok(nodes),
            PathValues::Strings(_) => Err(EvalError::AttributeStep),
        }
    }

    /// Filters a node-set through predicates the way a collapsed step
    /// does: each predicate sees the whole set as one context (position =
    /// index within it). For **position-insensitive** predicates — the
    /// only kind a planner may route here — this is equivalent to the
    /// per-context-node filtering of a step-by-step run, because each
    /// node's verdict ignores position and size entirely.
    pub fn filter_predicates(
        &self,
        nodes: Vec<NodeId>,
        predicates: &[Expr],
    ) -> Result<Vec<NodeId>, EvalError> {
        let mut out = nodes;
        for predicate in predicates {
            let size = out.len();
            let mut kept = Vec::with_capacity(size);
            for (i, &n) in out.iter().enumerate() {
                if self.eval_predicate(predicate, n, i + 1, size)? {
                    kept.push(n);
                }
            }
            out = kept;
        }
        Ok(out)
    }

    fn eval_path(&self, path: &LocationPath, context: NodeId) -> Result<PathValues, EvalError> {
        let start = if path.absolute {
            self.doc.root_element().unwrap_or_else(|| self.doc.root())
        } else {
            context
        };
        self.eval_steps_values(&path.steps, vec![start])
    }

    fn eval_steps_values(
        &self,
        steps: &[Step],
        mut current: Vec<NodeId>,
    ) -> Result<PathValues, EvalError> {
        let mut skip_next = false;
        for (i, step) in steps.iter().enumerate() {
            if skip_next {
                skip_next = false;
                continue;
            }
            // `//name` peephole: `descendant-or-self::node()/child::name`
            // equals `descendant::name` (plus the context itself never
            // matching a child step of its own parent set changes nothing),
            // so a name index can answer it with one candidate pass instead
            // of expanding every node. Only valid when the child step's
            // predicates are position-insensitive: `//x[2]` counts positions
            // among siblings, which the collapsed form cannot see.
            if step.axis == Axis::DescendantOrSelf
                && step.test == NodeTest::AnyNode
                && step.predicates.is_empty()
            {
                if let Some(next) = steps.get(i + 1) {
                    if next.axis == Axis::Child {
                        if let NodeTest::Name(name) = &next.test {
                            if !next.predicates.iter().any(expr_is_position_sensitive) {
                                if let Some(matched) = self.collapsed_descendant_step(
                                    &current, name, &next.predicates,
                                )? {
                                    self.bump(Axis::Descendant);
                                    current = matched;
                                    skip_next = true;
                                    if current.is_empty() {
                                        break;
                                    }
                                    continue;
                                }
                            }
                        }
                    }
                }
            }
            if step.axis == Axis::Attribute {
                if i + 1 != steps.len() {
                    return Err(EvalError::AttributeStep);
                }
                self.bump(Axis::Attribute);
                let mut strings = Vec::new();
                for &n in &current {
                    match &step.test {
                        NodeTest::Name(name) => {
                            if let Some(v) = self.doc.attribute(n, name) {
                                strings.push(v.to_owned());
                            }
                        }
                        NodeTest::Wildcard | NodeTest::AnyNode => {
                            for a in self.doc.attributes(n) {
                                strings.push(a.value.to_string());
                            }
                        }
                        _ => {}
                    }
                }
                return Ok(PathValues::Strings(strings));
            }
            current = self.eval_step(step, &current)?;
            if current.is_empty() {
                break;
            }
        }
        Ok(PathValues::Nodes(current))
    }

    /// The collapsed `//name` step: descendants of any context node that
    /// carry `name`, filtered by position-insensitive predicates. Returns
    /// `None` when the provider has no name index to answer from.
    fn collapsed_descendant_step(
        &self,
        context: &[NodeId],
        name: &str,
        predicates: &[Expr],
    ) -> Result<Option<Vec<NodeId>>, EvalError> {
        let Some(per_ctx) = self.axes.descendants_named_batch(context, name) else {
            return Ok(None);
        };
        let mut out: Vec<NodeId> = per_ctx.into_iter().flatten().collect();
        // One context node's descendants are already in document order and
        // duplicate-free; only a genuine union needs the sort.
        if context.len() > 1 {
            self.sort_doc_order(&mut out);
        }
        for predicate in predicates {
            let size = out.len();
            let mut kept = Vec::with_capacity(size);
            for (i, &n) in out.iter().enumerate() {
                if self.eval_predicate(predicate, n, i + 1, size)? {
                    kept.push(n);
                }
            }
            out = kept;
        }
        Ok(Some(out))
    }

    /// Sorts a node-set union into document order and deduplicates, using
    /// the provider's precomputed rank keys when it carries them (one
    /// integer compare per comparison) and falling back to
    /// `cmp_doc_order`'s structural/label arithmetic otherwise.
    fn sort_doc_order(&self, out: &mut Vec<NodeId>) {
        if let Some(order) = self.axes.order() {
            out.sort_unstable_by_key(|&n| order.rank(n));
        } else {
            out.sort_by(|&a, &b| self.axes.cmp_doc_order(a, b));
        }
        out.dedup();
    }

    /// Applies one step to a node-set, preserving document order and
    /// deduplicating.
    fn eval_step(&self, step: &Step, context: &[NodeId]) -> Result<Vec<NodeId>, EvalError> {
        self.bump(step.axis);
        // Name-indexed fast path (the paper's condition-first strategy):
        // the provider answers child/descendant name steps directly, with
        // the name resolved to its interned id once for the whole step.
        if let NodeTest::Name(name) = &step.test {
            let fast = match step.axis {
                Axis::Child => self.axes.children_named_batch(context, name),
                Axis::Descendant => self.axes.descendants_named_batch(context, name),
                _ => None,
            };
            if let Some(per_ctx) = fast {
                let mut out: Vec<NodeId> = Vec::new();
                for mut matched in per_ctx {
                    for predicate in &step.predicates {
                        let size = matched.len();
                        let mut kept = Vec::with_capacity(size);
                        for (i, &n) in matched.iter().enumerate() {
                            if self.eval_predicate(predicate, n, i + 1, size)? {
                                kept.push(n);
                            }
                        }
                        matched = kept;
                    }
                    out.extend(matched);
                }
                if context.len() > 1 {
                    self.sort_doc_order(&mut out);
                }
                return Ok(out);
            }
        }
        let mut out: Vec<NodeId> = Vec::new();
        for &node in context {
            // Axis nodes in document order from the provider.
            let axis_nodes: Vec<NodeId> = match step.axis {
                Axis::Child => self.axes.children(node),
                Axis::Descendant => self.axes.descendants(node),
                Axis::DescendantOrSelf => {
                    let mut v = vec![node];
                    v.extend(self.axes.descendants(node));
                    v
                }
                Axis::Parent => self.axes.parent(node).into_iter().collect(),
                Axis::Ancestor => self.axes.ancestors(node),
                Axis::AncestorOrSelf => {
                    let mut v = self.axes.ancestors(node);
                    v.push(node);
                    v
                }
                Axis::Following => self.axes.following(node),
                Axis::Preceding => self.axes.preceding(node),
                Axis::FollowingSibling => self.axes.following_siblings(node),
                Axis::PrecedingSibling => self.axes.preceding_siblings(node),
                Axis::SelfAxis => vec![node],
                Axis::Attribute => return Err(EvalError::AttributeStep),
            };
            // Node test.
            let mut matched: Vec<NodeId> =
                axis_nodes.into_iter().filter(|&n| self.node_test(n, &step.test)).collect();
            // Predicates, applied in proximity order for reverse axes.
            for predicate in &step.predicates {
                if step.axis.is_reverse() {
                    matched.reverse();
                }
                let size = matched.len();
                let mut kept = Vec::with_capacity(size);
                for (i, &n) in matched.iter().enumerate() {
                    if self.eval_predicate(predicate, n, i + 1, size)? {
                        kept.push(n);
                    }
                }
                matched = kept;
                if step.axis.is_reverse() {
                    matched.reverse();
                }
            }
            out.extend(matched);
        }
        // Union over context nodes: sort in document order, dedup. A single
        // context node needs neither — every axis method already returns
        // document order (the provider contract) without duplicates.
        if context.len() > 1 {
            self.sort_doc_order(&mut out);
        }
        Ok(out)
    }

    fn node_test(&self, node: NodeId, test: &NodeTest) -> bool {
        match test {
            NodeTest::Name(name) => self.doc.tag_name(node) == Some(name.as_str()),
            NodeTest::Wildcard => self.doc.is_element(node),
            NodeTest::Text => matches!(self.doc.kind(node), NodeKind::Text(_)),
            NodeTest::AnyNode => true,
            NodeTest::Comment => matches!(self.doc.kind(node), NodeKind::Comment(_)),
            NodeTest::ProcessingInstruction(target) => match self.doc.kind(node) {
                NodeKind::ProcessingInstruction { target: t, .. } => {
                    target.as_ref().is_none_or(|want| want.as_str() == t.as_ref())
                }
                _ => false,
            },
        }
    }

    fn eval_predicate(
        &self,
        expr: &Expr,
        node: NodeId,
        position: usize,
        size: usize,
    ) -> Result<bool, EvalError> {
        match expr {
            Expr::Or(a, b) => Ok(self.eval_predicate(a, node, position, size)?
                || self.eval_predicate(b, node, position, size)?),
            Expr::And(a, b) => Ok(self.eval_predicate(a, node, position, size)?
                && self.eval_predicate(b, node, position, size)?),
            Expr::Not(inner) => Ok(!self.eval_predicate(inner, node, position, size)?),
            Expr::Exists(value) => match value {
                // A bare number is a position test.
                Value::Number(n) => Ok(position as f64 == *n),
                Value::Position => Ok(true),
                Value::Last => Ok(position == size),
                Value::Literal(s) => Ok(!s.is_empty()),
                Value::Attribute(name) => Ok(self.doc.attribute(node, name).is_some()),
                Value::Path(path) => match self.eval_path(path, node)? {
                    PathValues::Nodes(n) => Ok(!n.is_empty()),
                    PathValues::Strings(s) => Ok(!s.is_empty()),
                },
                Value::Count(path) => Ok(self.count(path, node)? > 0.0),
                Value::StringLength(inner) => {
                    Ok(!self.string_of(inner, node, position, size)?.is_empty())
                }
                Value::Name => Ok(self.doc.tag_name(node).is_some()),
            },
            Expr::Contains(a, b) => {
                let a = self.string_of(a, node, position, size)?;
                let b = self.string_of(b, node, position, size)?;
                Ok(a.contains(&b))
            }
            Expr::StartsWith(a, b) => {
                let a = self.string_of(a, node, position, size)?;
                let b = self.string_of(b, node, position, size)?;
                Ok(a.starts_with(&b))
            }
            Expr::Comparison { left, op, right } => {
                let lv = self.resolve_value(left, node, position, size)?;
                let rv = self.resolve_value(right, node, position, size)?;
                Ok(compare(&lv, *op, &rv))
            }
        }
    }

    fn count(&self, path: &LocationPath, node: NodeId) -> Result<f64, EvalError> {
        Ok(match self.eval_path(path, node)? {
            PathValues::Nodes(n) => n.len() as f64,
            PathValues::Strings(s) => s.len() as f64,
        })
    }

    fn resolve_value(
        &self,
        value: &Value,
        node: NodeId,
        position: usize,
        size: usize,
    ) -> Result<Resolved, EvalError> {
        Ok(match value {
            Value::Number(n) => Resolved::Number(*n),
            Value::Position => Resolved::Number(position as f64),
            Value::Last => Resolved::Number(size as f64),
            Value::Literal(s) => Resolved::Strings(vec![s.clone()]),
            Value::Attribute(name) => Resolved::Strings(
                self.doc.attribute(node, name).map(str::to_owned).into_iter().collect(),
            ),
            Value::Count(path) => Resolved::Number(self.count(path, node)?),
            Value::StringLength(inner) => {
                let s = self.string_of(inner, node, position, size)?;
                Resolved::Number(s.chars().count() as f64)
            }
            Value::Name => Resolved::Strings(
                self.doc.tag_name(node).map(str::to_owned).into_iter().collect(),
            ),
            Value::Path(path) => match self.eval_path(path, node)? {
                PathValues::Strings(s) => Resolved::Strings(s),
                PathValues::Nodes(nodes) => Resolved::Strings(
                    nodes.into_iter().map(|n| self.doc.string_value(n)).collect(),
                ),
            },
        })
    }
}

impl<A: AxisProvider> Evaluator<'_, A> {
    /// XPath `string()` conversion of a value: the first node's string
    /// value for node-sets, the literal/number text otherwise.
    fn string_of(
        &self,
        value: &Value,
        node: NodeId,
        position: usize,
        size: usize,
    ) -> Result<String, EvalError> {
        Ok(match self.resolve_value(value, node, position, size)? {
            Resolved::Number(n) => {
                if n.fract() == 0.0 {
                    format!("{}", n as i64)
                } else {
                    format!("{n}")
                }
            }
            Resolved::Strings(set) => set.into_iter().next().unwrap_or_default(),
        })
    }
}

/// Whether a predicate's outcome can depend on the context position — bare
/// numbers, `position()`, or `last()` anywhere inside. Public because a
/// query planner must refuse to reorder (or batch-filter) any step whose
/// predicates fail this test.
pub fn expr_is_position_sensitive(expr: &Expr) -> bool {
    fn value_sensitive(v: &Value) -> bool {
        match v {
            Value::Position | Value::Last => true,
            Value::StringLength(inner) => value_sensitive(inner),
            _ => false,
        }
    }
    match expr {
        Expr::Or(a, b) | Expr::And(a, b) => {
            expr_is_position_sensitive(a) || expr_is_position_sensitive(b)
        }
        Expr::Not(inner) => expr_is_position_sensitive(inner),
        Expr::Exists(v) => matches!(v, Value::Number(_)) || value_sensitive(v),
        Expr::Comparison { left, right, .. } => value_sensitive(left) || value_sensitive(right),
        Expr::Contains(a, b) | Expr::StartsWith(a, b) => {
            value_sensitive(a) || value_sensitive(b)
        }
    }
}

/// A resolved predicate operand.
enum Resolved {
    Number(f64),
    Strings(Vec<String>),
}

/// XPath comparison semantics: node-set operands compare existentially.
fn compare(left: &Resolved, op: CmpOp, right: &Resolved) -> bool {
    match (left, right) {
        (Resolved::Number(a), Resolved::Number(b)) => cmp_f64(*a, op, *b),
        (Resolved::Strings(set), Resolved::Number(b)) => set
            .iter()
            .filter_map(|s| s.trim().parse::<f64>().ok())
            .any(|a| cmp_f64(a, op, *b)),
        (Resolved::Number(a), Resolved::Strings(set)) => set
            .iter()
            .filter_map(|s| s.trim().parse::<f64>().ok())
            .any(|b| cmp_f64(*a, op, b)),
        (Resolved::Strings(sa), Resolved::Strings(sb)) => match op {
            CmpOp::Eq => sa.iter().any(|a| sb.iter().any(|b| a == b)),
            CmpOp::Ne => sa.iter().any(|a| sb.iter().any(|b| a != b)),
            // Relational operators on strings compare numerically, per XPath.
            _ => sa
                .iter()
                .filter_map(|s| s.trim().parse::<f64>().ok())
                .any(|a| {
                    sb.iter()
                        .filter_map(|s| s.trim().parse::<f64>().ok())
                        .any(|b| cmp_f64(a, op, b))
                }),
        },
    }
}

fn cmp_f64(a: f64, op: CmpOp, b: f64) -> bool {
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
    }
}
