//! Abstract syntax for the supported XPath subset.

use std::fmt;

/// A location path: `steps` applied left to right; `absolute` paths start at
/// the document root rather than the context node.
#[derive(Debug, Clone, PartialEq)]
pub struct LocationPath {
    /// Leading `/` or `//`.
    pub absolute: bool,
    /// The steps, in order.
    pub steps: Vec<Step>,
}

/// One location step: `axis::test[predicate]*`.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// The axis the step walks.
    pub axis: Axis,
    /// The node test filtering the axis.
    pub test: NodeTest,
    /// Zero or more predicates, applied in order.
    pub predicates: Vec<Expr>,
}

/// The positional XPath axes (Section 3.5 scope: "-or-self" variants are
/// included because `//` abbreviates through `descendant-or-self`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// Direct children.
    Child,
    /// All strict descendants.
    Descendant,
    /// The node plus all strict descendants.
    DescendantOrSelf,
    /// The parent.
    Parent,
    /// All strict ancestors.
    Ancestor,
    /// The node plus all strict ancestors.
    AncestorOrSelf,
    /// Nodes after the context node in document order, minus descendants.
    Following,
    /// Nodes before the context node in document order, minus ancestors.
    Preceding,
    /// Later siblings.
    FollowingSibling,
    /// Earlier siblings.
    PrecedingSibling,
    /// The context node itself.
    SelfAxis,
    /// Attributes (usable inside predicates via `@name`).
    Attribute,
}

impl Axis {
    /// Number of axes (the size of per-axis counter arrays).
    pub const COUNT: usize = 12;

    /// Every axis, indexed by [`Axis::index`].
    pub const ALL: [Axis; Axis::COUNT] = [
        Axis::Child,
        Axis::Descendant,
        Axis::DescendantOrSelf,
        Axis::Parent,
        Axis::Ancestor,
        Axis::AncestorOrSelf,
        Axis::Following,
        Axis::Preceding,
        Axis::FollowingSibling,
        Axis::PrecedingSibling,
        Axis::SelfAxis,
        Axis::Attribute,
    ];

    /// A dense index in `0..Axis::COUNT`, aligned with [`Axis::ALL`].
    pub fn index(self) -> usize {
        match self {
            Axis::Child => 0,
            Axis::Descendant => 1,
            Axis::DescendantOrSelf => 2,
            Axis::Parent => 3,
            Axis::Ancestor => 4,
            Axis::AncestorOrSelf => 5,
            Axis::Following => 6,
            Axis::Preceding => 7,
            Axis::FollowingSibling => 8,
            Axis::PrecedingSibling => 9,
            Axis::SelfAxis => 10,
            Axis::Attribute => 11,
        }
    }

    /// The axis name as written in verbose syntax.
    pub fn name(self) -> &'static str {
        match self {
            Axis::Child => "child",
            Axis::Descendant => "descendant",
            Axis::DescendantOrSelf => "descendant-or-self",
            Axis::Parent => "parent",
            Axis::Ancestor => "ancestor",
            Axis::AncestorOrSelf => "ancestor-or-self",
            Axis::Following => "following",
            Axis::Preceding => "preceding",
            Axis::FollowingSibling => "following-sibling",
            Axis::PrecedingSibling => "preceding-sibling",
            Axis::SelfAxis => "self",
            Axis::Attribute => "attribute",
        }
    }

    /// Parses a verbose axis name.
    pub fn from_name(name: &str) -> Option<Axis> {
        Some(match name {
            "child" => Axis::Child,
            "descendant" => Axis::Descendant,
            "descendant-or-self" => Axis::DescendantOrSelf,
            "parent" => Axis::Parent,
            "ancestor" => Axis::Ancestor,
            "ancestor-or-self" => Axis::AncestorOrSelf,
            "following" => Axis::Following,
            "preceding" => Axis::Preceding,
            "following-sibling" => Axis::FollowingSibling,
            "preceding-sibling" => Axis::PrecedingSibling,
            "self" => Axis::SelfAxis,
            "attribute" => Axis::Attribute,
            _ => return None,
        })
    }

    /// Whether results of this axis arrive in reverse document order (XPath
    /// proximity order for ancestor/preceding axes).
    pub fn is_reverse(self) -> bool {
        matches!(
            self,
            Axis::Parent | Axis::Ancestor | Axis::AncestorOrSelf
                | Axis::Preceding | Axis::PrecedingSibling
        )
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A node test.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeTest {
    /// `name` — elements (or attributes) with this name.
    Name(String),
    /// `*` — any element (or any attribute).
    Wildcard,
    /// `text()`.
    Text,
    /// `node()` — any node.
    AnyNode,
    /// `comment()`.
    Comment,
    /// `processing-instruction()` / `processing-instruction('target')`.
    ProcessingInstruction(Option<String>),
}

/// A predicate expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `a or b`.
    Or(Box<Expr>, Box<Expr>),
    /// `a and b`.
    And(Box<Expr>, Box<Expr>),
    /// `not(e)`.
    Not(Box<Expr>),
    /// `contains(a, b)` — substring test on string values.
    Contains(Value, Value),
    /// `starts-with(a, b)` — prefix test on string values.
    StartsWith(Value, Value),
    /// `left op right`.
    Comparison {
        /// Left operand.
        left: Value,
        /// Operator.
        op: CmpOp,
        /// Right operand.
        right: Value,
    },
    /// Bare value: a number means a position test, a path/attribute means an
    /// existence test.
    Exists(Value),
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// An operand inside a predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A relative path, evaluated from the predicate's context node.
    Path(LocationPath),
    /// `@name` — an attribute of the context node.
    Attribute(String),
    /// A quoted string.
    Literal(String),
    /// A number; bare numbers in predicates are position tests.
    Number(f64),
    /// `position()`.
    Position,
    /// `last()`.
    Last,
    /// `count(path)`.
    Count(LocationPath),
    /// `string-length(v)` — character count of the string value.
    StringLength(Box<Value>),
    /// `name()` — the context node's tag name.
    Name,
}
