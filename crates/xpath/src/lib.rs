//! An XPath 1.0 subset with pluggable axis evaluation.
//!
//! Section 3.5 of the rUID paper argues that "generating and filtering the
//! axes is essential in evaluation of location steps in XPath expressions"
//! and shows how every positional axis can be produced from rUID labels.
//! This crate makes that claim executable:
//!
//! * [`parse`] — location paths with the thirteen positional axes
//!   (abbreviated and verbose syntax), name/wildcard/`text()`/`node()`/
//!   `comment()`/`processing-instruction()` node tests, and predicates
//!   (positions, existence paths, `@attr`, comparisons, `and`/`or`/`not`).
//! * [`Evaluator`] — a single evaluation engine parameterized by an
//!   [`AxisProvider`]: where the nodes of an axis come from.
//! * [`TreeAxes`] — DOM traversal (the baseline without any numbering).
//! * [`UidAxes`] — axes from original-UID label arithmetic.
//! * [`RuidAxes`] — axes from the paper's rUID routines (`rchildren`,
//!   `rdescendant`, `rpsibling`, ... of `ruid-core`).
//!
//! All three providers return identical node-sets (the test suite checks
//! them against each other); they differ in *how* the sets are produced,
//! which is what experiment E4/E5 measures.
//!
//! Unsupported (out of the paper's scope): namespaces, variables, most of
//! the function library, and attribute nodes as top-level results
//! (attributes are reachable in predicates via `@name`).

mod ast;
mod axes;
mod eval;
mod join;
mod lexer;
mod nameindex;
mod parser;

pub use ast::{Axis, CmpOp, Expr, LocationPath, NodeTest, Step, Value};
pub use axes::{AxisProvider, RuidAxes, SpanAxes, TreeAxes, UidAxes};
pub use eval::{expr_is_position_sensitive, EvalError, Evaluator, StepStats};
pub use join::{containment_join, parent_join};
pub use nameindex::{NameIndex, NameIndexed};
pub use lexer::{LexError, Token};
pub use parser::{parse, ParseError};
