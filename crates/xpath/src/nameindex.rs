//! The paper's *first* evaluation strategy (Section 3.5): "generating the
//! set of nodes satisfying C and checking which nodes belong to the
//! specific axis".
//!
//! An element-name index maps each tag name to its nodes in document order;
//! a child or descendant step with a name test then starts from the (small)
//! candidate list and keeps the candidates whose **labels** pass the axis
//! check — `rparent` for child steps, the ancestor arithmetic for
//! descendant steps — instead of expanding the axis node by node. This is
//! where the UID family's computed-parent property pays off: the axis check
//! is pure in-memory arithmetic.

use std::collections::HashMap;

use par::Executor;
use xmldom::{DocOrder, Document, NameId, NodeId};

use crate::axes::AxisProvider;

/// Element-name index: tag name -> nodes in document order.
#[derive(Debug, Clone, Default)]
pub struct NameIndex {
    by_name: HashMap<NameId, Vec<NodeId>>,
}

impl NameIndex {
    /// Indexes every element under the document's root element.
    pub fn build(doc: &Document) -> Self {
        let root = doc.root_element().unwrap_or_else(|| doc.root());
        let mut by_name: HashMap<NameId, Vec<NodeId>> = HashMap::new();
        for node in doc.descendants(root) {
            if let Some(name) = doc.element_name(node) {
                by_name.entry(name).or_default().push(node);
            }
        }
        NameIndex { by_name }
    }

    /// [`NameIndex::build`] with an explicit thread budget: the pre-order
    /// node sequence is split into contiguous chunks, each chunk indexed
    /// independently, and the chunk maps merged **in chunk order** — which
    /// keeps every per-name list in document order and the result identical
    /// to the sequential build.
    pub fn build_with(doc: &Document, exec: &Executor) -> Self {
        if exec.is_sequential() {
            return NameIndex::build(doc);
        }
        let root = doc.root_element().unwrap_or_else(|| doc.root());
        let nodes: Vec<NodeId> = doc.descendants(root).collect();
        // A few chunks per thread so stealing can smooth out name-density
        // skew between document regions.
        let chunk = (nodes.len() / (exec.threads() * 4)).max(1024);
        let chunks: Vec<&[NodeId]> = nodes.chunks(chunk).collect();
        let partials = exec.par_map(&chunks, |_, part| {
            let mut by_name: HashMap<NameId, Vec<NodeId>> = HashMap::new();
            for &node in *part {
                if let Some(name) = doc.element_name(node) {
                    by_name.entry(name).or_default().push(node);
                }
            }
            by_name
        });
        let mut by_name: HashMap<NameId, Vec<NodeId>> = HashMap::new();
        for partial in partials {
            for (name, mut list) in partial {
                by_name.entry(name).or_default().append(&mut list);
            }
        }
        NameIndex { by_name }
    }

    /// All elements named `name`, in document order.
    pub fn nodes_named(&self, doc: &Document, name: &str) -> &[NodeId] {
        doc.name_id(name).map_or(&[], |id| self.nodes_with_id(id))
    }

    /// All elements with the interned name `id`, in document order — the
    /// per-step hot path once the caller has resolved the name.
    pub fn nodes_with_id(&self, id: NameId) -> &[NodeId] {
        self.by_name.get(&id).map_or(&[], Vec::as_slice)
    }

    /// Number of distinct names indexed.
    pub fn name_count(&self) -> usize {
        self.by_name.len()
    }

    /// Incrementally absorbs one freshly inserted element, splicing it
    /// into its name's list at document-order rank (`order` must be built
    /// *after* the insert). Non-element nodes are never indexed and pass
    /// through untouched.
    pub fn patch_insert(&mut self, doc: &Document, order: &DocOrder, node: NodeId) {
        let Some(name) = doc.element_name(node) else { return };
        let list = self.by_name.entry(name).or_default();
        let rank = order.rank(node);
        let at = list.partition_point(|&m| order.rank(m) < rank);
        list.insert(at, node);
    }

    /// Incrementally removes a detached subtree's elements, given as
    /// `(name, node)` pairs captured *before* the detach. Names whose
    /// lists empty out are dropped so `name_count` matches a rebuild.
    pub fn patch_delete(&mut self, removed: &[(NameId, NodeId)]) {
        for &(name, node) in removed {
            if let Some(list) = self.by_name.get_mut(&name) {
                list.retain(|&m| m != node);
                if list.is_empty() {
                    self.by_name.remove(&name);
                }
            }
        }
    }
}

/// Wraps any axis provider with a name index, accelerating child and
/// descendant steps that carry a name test (the common case). All other
/// axes delegate to the inner provider.
pub struct NameIndexed<'a, A: AxisProvider> {
    inner: A,
    doc: &'a Document,
    index: &'a NameIndex,
}

impl<'a, A: AxisProvider> NameIndexed<'a, A> {
    /// Combines a provider with a prebuilt index.
    pub fn new(inner: A, doc: &'a Document, index: &'a NameIndex) -> Self {
        NameIndexed { inner, doc, index }
    }

    /// The wrapped provider.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Children of `n` carrying the interned name `id`, from the candidate
    /// list the caller already looked up.
    fn children_with_id(&self, n: NodeId, id: NameId, candidates: &[NodeId]) -> Vec<NodeId> {
        // Candidate-first only pays when the candidate list is small;
        // otherwise checking every candidate against every context node of
        // a step goes quadratic, and expanding the child axis is cheaper.
        if candidates.len() > 16 {
            return self
                .inner
                .children(n)
                .into_iter()
                .filter(|&c| self.doc.element_name(c) == Some(id))
                .collect();
        }
        candidates.iter().copied().filter(|&c| self.inner.parent(c) == Some(n)).collect()
    }

    /// Descendants of `n` from the candidate list (see
    /// [`AxisProvider::descendants_named`]).
    fn descendants_from_candidates(&self, n: NodeId, candidates: &[NodeId]) -> Vec<NodeId> {
        // Candidate-first is the right plan here even for large candidate
        // lists: one ancestry check per candidate beats expanding the whole
        // subtree (the common `//name` shape hits this exactly once per
        // query thanks to the evaluator's `//` peephole).
        candidates.iter().copied().filter(|&c| self.inner.is_ancestor(n, c)).collect()
    }
}

impl<A: AxisProvider> AxisProvider for NameIndexed<'_, A> {
    fn provider_name(&self) -> &'static str {
        "name-indexed"
    }

    fn children(&self, n: NodeId) -> Vec<NodeId> {
        self.inner.children(n)
    }

    fn parent(&self, n: NodeId) -> Option<NodeId> {
        self.inner.parent(n)
    }

    fn descendants(&self, n: NodeId) -> Vec<NodeId> {
        self.inner.descendants(n)
    }

    fn ancestors(&self, n: NodeId) -> Vec<NodeId> {
        self.inner.ancestors(n)
    }

    fn following_siblings(&self, n: NodeId) -> Vec<NodeId> {
        self.inner.following_siblings(n)
    }

    fn preceding_siblings(&self, n: NodeId) -> Vec<NodeId> {
        self.inner.preceding_siblings(n)
    }

    fn following(&self, n: NodeId) -> Vec<NodeId> {
        self.inner.following(n)
    }

    fn preceding(&self, n: NodeId) -> Vec<NodeId> {
        self.inner.preceding(n)
    }

    fn is_ancestor(&self, a: NodeId, b: NodeId) -> bool {
        self.inner.is_ancestor(a, b)
    }

    fn cmp_doc_order(&self, a: NodeId, b: NodeId) -> std::cmp::Ordering {
        self.inner.cmp_doc_order(a, b)
    }

    fn children_named(&self, n: NodeId, name: &str) -> Option<Vec<NodeId>> {
        let Some(id) = self.doc.name_id(name) else { return Some(Vec::new()) };
        Some(self.children_with_id(n, id, self.index.nodes_with_id(id)))
    }

    fn descendants_named(&self, n: NodeId, name: &str) -> Option<Vec<NodeId>> {
        let Some(id) = self.doc.name_id(name) else { return Some(Vec::new()) };
        Some(self.descendants_from_candidates(n, self.index.nodes_with_id(id)))
    }

    fn children_named_batch(&self, ctx: &[NodeId], name: &str) -> Option<Vec<Vec<NodeId>>> {
        // Resolve the name to its interned id once per step, not once per
        // context node (the name_id + map lookup used to sit in this loop).
        let Some(id) = self.doc.name_id(name) else {
            return Some(vec![Vec::new(); ctx.len()]);
        };
        let candidates = self.index.nodes_with_id(id);
        Some(ctx.iter().map(|&n| self.children_with_id(n, id, candidates)).collect())
    }

    fn descendants_named_batch(&self, ctx: &[NodeId], name: &str) -> Option<Vec<Vec<NodeId>>> {
        let Some(id) = self.doc.name_id(name) else {
            return Some(vec![Vec::new(); ctx.len()]);
        };
        let candidates = self.index.nodes_with_id(id);
        Some(ctx.iter().map(|&n| self.descendants_from_candidates(n, candidates)).collect())
    }

    fn order(&self) -> Option<&DocOrder> {
        self.inner.order()
    }
}
