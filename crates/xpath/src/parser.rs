//! Recursive-descent parser for the XPath subset.

use std::fmt;

use crate::ast::{Axis, CmpOp, Expr, LocationPath, NodeTest, Step, Value};
use crate::lexer::{tokenize, LexError, Token};

/// A parse failure.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Description of what went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XPath parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError { message: e.to_string() }
    }
}

/// Parses an XPath location path.
pub fn parse(input: &str) -> Result<LocationPath, ParseError> {
    let tokens = tokenize(input)?;
    let mut parser = Parser { tokens, pos: 0 };
    let path = parser.location_path()?;
    if parser.pos != parser.tokens.len() {
        return Err(ParseError {
            message: format!("trailing tokens starting at {}", parser.tokens[parser.pos]),
        });
    }
    if path.steps.is_empty() && !path.absolute {
        return Err(ParseError { message: "empty expression".into() });
    }
    Ok(path)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<(), ParseError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(ParseError {
                message: match self.peek() {
                    Some(found) => format!("expected {t}, found {found}"),
                    None => format!("expected {t}, found end of input"),
                },
            })
        }
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { message: message.into() })
    }

    fn location_path(&mut self) -> Result<LocationPath, ParseError> {
        let mut steps = Vec::new();
        let absolute = match self.peek() {
            Some(Token::Slash) => {
                self.pos += 1;
                true
            }
            Some(Token::DoubleSlash) => {
                self.pos += 1;
                steps.push(descendant_or_self_node());
                true
            }
            _ => false,
        };
        // `/` on its own selects the root.
        if absolute && !self.starts_step() {
            return Ok(LocationPath { absolute, steps });
        }
        steps.push(self.step()?);
        loop {
            match self.peek() {
                Some(Token::Slash) => {
                    self.pos += 1;
                    steps.push(self.step()?);
                }
                Some(Token::DoubleSlash) => {
                    self.pos += 1;
                    steps.push(descendant_or_self_node());
                    steps.push(self.step()?);
                }
                _ => break,
            }
        }
        Ok(LocationPath { absolute, steps })
    }

    fn starts_step(&self) -> bool {
        matches!(
            self.peek(),
            Some(
                Token::Name(_) | Token::Star | Token::At | Token::Dot | Token::DotDot
            )
        )
    }

    fn step(&mut self) -> Result<Step, ParseError> {
        // Abbreviations first.
        if self.eat(&Token::Dot) {
            return Ok(Step { axis: Axis::SelfAxis, test: NodeTest::AnyNode, predicates: vec![] });
        }
        if self.eat(&Token::DotDot) {
            return Ok(Step { axis: Axis::Parent, test: NodeTest::AnyNode, predicates: vec![] });
        }
        let axis = if self.eat(&Token::At) {
            Axis::Attribute
        } else if let Some(Token::Name(name)) = self.peek() {
            // Look ahead for `axis::`.
            if self.tokens.get(self.pos + 1) == Some(&Token::DoubleColon) {
                let axis = Axis::from_name(name)
                    .ok_or_else(|| ParseError { message: format!("unknown axis {name:?}") })?;
                self.pos += 2;
                axis
            } else {
                Axis::Child
            }
        } else {
            Axis::Child
        };
        let test = self.node_test()?;
        let mut predicates = Vec::new();
        while self.eat(&Token::LBracket) {
            predicates.push(self.expr()?);
            self.expect(&Token::RBracket)?;
        }
        Ok(Step { axis, test, predicates })
    }

    fn node_test(&mut self) -> Result<NodeTest, ParseError> {
        match self.bump() {
            Some(Token::Star) => Ok(NodeTest::Wildcard),
            Some(Token::Name(name)) => {
                // Node-type tests are names followed by `(`.
                if self.peek() == Some(&Token::LParen) {
                    match name.as_str() {
                        "text" => {
                            self.pos += 1;
                            self.expect(&Token::RParen)?;
                            Ok(NodeTest::Text)
                        }
                        "node" => {
                            self.pos += 1;
                            self.expect(&Token::RParen)?;
                            Ok(NodeTest::AnyNode)
                        }
                        "comment" => {
                            self.pos += 1;
                            self.expect(&Token::RParen)?;
                            Ok(NodeTest::Comment)
                        }
                        "processing-instruction" => {
                            self.pos += 1;
                            let target = if let Some(Token::Literal(t)) = self.peek() {
                                let t = t.clone();
                                self.pos += 1;
                                Some(t)
                            } else {
                                None
                            };
                            self.expect(&Token::RParen)?;
                            Ok(NodeTest::ProcessingInstruction(target))
                        }
                        other => self.err(format!("unknown node test {other}()")),
                    }
                } else {
                    Ok(NodeTest::Name(name))
                }
            }
            Some(t) => self.err(format!("expected a node test, found {t}")),
            None => self.err("expected a node test, found end of input"),
        }
    }

    // Expr ::= AndExpr ('or' AndExpr)*
    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.and_expr()?;
        while self.peek() == Some(&Token::Name("or".into())) {
            self.pos += 1;
            let right = self.and_expr()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.unary_expr()?;
        while self.peek() == Some(&Token::Name("and".into())) {
            self.pos += 1;
            let right = self.unary_expr()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if self.peek() == Some(&Token::Name("not".into()))
            && self.tokens.get(self.pos + 1) == Some(&Token::LParen)
        {
            self.pos += 2;
            let inner = self.expr()?;
            self.expect(&Token::RParen)?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        // Two-argument boolean string functions.
        for (fn_name, make) in [
            ("contains", Expr::Contains as fn(Value, Value) -> Expr),
            ("starts-with", Expr::StartsWith as fn(Value, Value) -> Expr),
        ] {
            if self.peek() == Some(&Token::Name(fn_name.into()))
                && self.tokens.get(self.pos + 1) == Some(&Token::LParen)
            {
                self.pos += 2;
                let a = self.value()?;
                self.expect(&Token::Comma)?;
                let b = self.value()?;
                self.expect(&Token::RParen)?;
                return Ok(make(a, b));
            }
        }
        if self.eat(&Token::LParen) {
            let inner = self.expr()?;
            self.expect(&Token::RParen)?;
            return Ok(inner);
        }
        let left = self.value()?;
        let op = match self.peek() {
            Some(Token::Eq) => Some(CmpOp::Eq),
            Some(Token::Ne) => Some(CmpOp::Ne),
            Some(Token::Lt) => Some(CmpOp::Lt),
            Some(Token::Le) => Some(CmpOp::Le),
            Some(Token::Gt) => Some(CmpOp::Gt),
            Some(Token::Ge) => Some(CmpOp::Ge),
            _ => None,
        };
        match op {
            Some(op) => {
                self.pos += 1;
                let right = self.value()?;
                Ok(Expr::Comparison { left, op, right })
            }
            None => Ok(Expr::Exists(left)),
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek().cloned() {
            Some(Token::Literal(s)) => {
                self.pos += 1;
                Ok(Value::Literal(s))
            }
            Some(Token::Number(n)) => {
                self.pos += 1;
                Ok(Value::Number(n))
            }
            Some(Token::At) => {
                self.pos += 1;
                match self.bump() {
                    Some(Token::Name(name)) => Ok(Value::Attribute(name)),
                    Some(t) => self.err(format!("expected an attribute name, found {t}")),
                    None => self.err("expected an attribute name"),
                }
            }
            Some(Token::Name(name)) if name == "position" => {
                if self.tokens.get(self.pos + 1) == Some(&Token::LParen) {
                    self.pos += 2;
                    self.expect(&Token::RParen)?;
                    Ok(Value::Position)
                } else {
                    self.path_value()
                }
            }
            Some(Token::Name(name)) if name == "last" => {
                if self.tokens.get(self.pos + 1) == Some(&Token::LParen) {
                    self.pos += 2;
                    self.expect(&Token::RParen)?;
                    Ok(Value::Last)
                } else {
                    self.path_value()
                }
            }
            Some(Token::Name(name)) if name == "string-length" => {
                if self.tokens.get(self.pos + 1) == Some(&Token::LParen) {
                    self.pos += 2;
                    let inner = self.value()?;
                    self.expect(&Token::RParen)?;
                    Ok(Value::StringLength(Box::new(inner)))
                } else {
                    self.path_value()
                }
            }
            Some(Token::Name(name)) if name == "name" => {
                if self.tokens.get(self.pos + 1) == Some(&Token::LParen) {
                    self.pos += 2;
                    self.expect(&Token::RParen)?;
                    Ok(Value::Name)
                } else {
                    self.path_value()
                }
            }
            Some(Token::Name(name)) if name == "count" => {
                if self.tokens.get(self.pos + 1) == Some(&Token::LParen) {
                    self.pos += 2;
                    let path = self.location_path()?;
                    self.expect(&Token::RParen)?;
                    Ok(Value::Count(path))
                } else {
                    self.path_value()
                }
            }
            Some(
                Token::Name(_) | Token::Star | Token::Dot | Token::DotDot | Token::Slash
                | Token::DoubleSlash,
            ) => self.path_value(),
            Some(t) => self.err(format!("expected a value, found {t}")),
            None => self.err("expected a value, found end of input"),
        }
    }

    fn path_value(&mut self) -> Result<Value, ParseError> {
        Ok(Value::Path(self.location_path()?))
    }
}

fn descendant_or_self_node() -> Step {
    Step { axis: Axis::DescendantOrSelf, test: NodeTest::AnyNode, predicates: vec![] }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_absolute_path() {
        let p = parse("/site/open_auctions/open_auction").unwrap();
        assert!(p.absolute);
        assert_eq!(p.steps.len(), 3);
        assert_eq!(p.steps[0].axis, Axis::Child);
        assert_eq!(p.steps[0].test, NodeTest::Name("site".into()));
    }

    #[test]
    fn parse_double_slash_expands() {
        let p = parse("//item").unwrap();
        assert!(p.absolute);
        assert_eq!(p.steps.len(), 2);
        assert_eq!(p.steps[0].axis, Axis::DescendantOrSelf);
        assert_eq!(p.steps[0].test, NodeTest::AnyNode);
        assert_eq!(p.steps[1].axis, Axis::Child);
    }

    #[test]
    fn parse_inner_double_slash() {
        let p = parse("site//name").unwrap();
        assert!(!p.absolute);
        assert_eq!(p.steps.len(), 3);
        assert_eq!(p.steps[1].axis, Axis::DescendantOrSelf);
    }

    #[test]
    fn parse_verbose_axes() {
        for (src, axis) in [
            ("ancestor::a", Axis::Ancestor),
            ("ancestor-or-self::a", Axis::AncestorOrSelf),
            ("descendant::a", Axis::Descendant),
            ("following-sibling::a", Axis::FollowingSibling),
            ("preceding-sibling::a", Axis::PrecedingSibling),
            ("following::a", Axis::Following),
            ("preceding::a", Axis::Preceding),
            ("self::a", Axis::SelfAxis),
            ("parent::a", Axis::Parent),
            ("child::a", Axis::Child),
        ] {
            let p = parse(src).unwrap();
            assert_eq!(p.steps[0].axis, axis, "{src}");
        }
    }

    #[test]
    fn parse_abbreviations() {
        let p = parse("../child/.").unwrap();
        assert_eq!(p.steps[0].axis, Axis::Parent);
        assert_eq!(p.steps[2].axis, Axis::SelfAxis);
        let p = parse("@id").unwrap();
        assert_eq!(p.steps[0].axis, Axis::Attribute);
        assert_eq!(p.steps[0].test, NodeTest::Name("id".into()));
    }

    #[test]
    fn parse_node_tests() {
        assert_eq!(parse("text()").unwrap().steps[0].test, NodeTest::Text);
        assert_eq!(parse("node()").unwrap().steps[0].test, NodeTest::AnyNode);
        assert_eq!(parse("comment()").unwrap().steps[0].test, NodeTest::Comment);
        assert_eq!(
            parse("processing-instruction('x')").unwrap().steps[0].test,
            NodeTest::ProcessingInstruction(Some("x".into()))
        );
        assert_eq!(parse("*").unwrap().steps[0].test, NodeTest::Wildcard);
    }

    #[test]
    fn parse_positional_predicate() {
        let p = parse("item[3]").unwrap();
        assert_eq!(p.steps[0].predicates, vec![Expr::Exists(Value::Number(3.0))]);
    }

    #[test]
    fn parse_attribute_comparison() {
        let p = parse("item[@id='item5']").unwrap();
        assert_eq!(
            p.steps[0].predicates[0],
            Expr::Comparison {
                left: Value::Attribute("id".into()),
                op: CmpOp::Eq,
                right: Value::Literal("item5".into()),
            }
        );
    }

    #[test]
    fn parse_boolean_connectives() {
        let p = parse("a[b and not(c) or d]").unwrap();
        match &p.steps[0].predicates[0] {
            Expr::Or(left, _) => match left.as_ref() {
                Expr::And(_, r) => assert!(matches!(r.as_ref(), Expr::Not(_))),
                other => panic!("expected And, got {other:?}"),
            },
            other => panic!("expected Or, got {other:?}"),
        }
    }

    #[test]
    fn parse_path_comparison() {
        let p = parse("open_auction[bidder/increase > 15]").unwrap();
        match &p.steps[0].predicates[0] {
            Expr::Comparison { left: Value::Path(path), op: CmpOp::Gt, .. } => {
                assert_eq!(path.steps.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_functions() {
        let p = parse("a[position() = 2]").unwrap();
        assert!(matches!(
            p.steps[0].predicates[0],
            Expr::Comparison { left: Value::Position, .. }
        ));
        let p = parse("a[last()]").unwrap();
        assert!(matches!(p.steps[0].predicates[0], Expr::Exists(Value::Last)));
        let p = parse("a[count(b) >= 2]").unwrap();
        assert!(matches!(
            p.steps[0].predicates[0],
            Expr::Comparison { left: Value::Count(_), .. }
        ));
    }

    #[test]
    fn parse_root_only() {
        let p = parse("/").unwrap();
        assert!(p.absolute);
        assert!(p.steps.is_empty());
    }

    #[test]
    fn parse_errors() {
        assert!(parse("").is_err());
        assert!(parse("a[").is_err());
        assert!(parse("a]").is_err());
        assert!(parse("unknown-axis::a").is_err());
        assert!(parse("a[blah()]").is_err());
        assert!(parse("a b").is_err());
    }

    #[test]
    fn element_named_like_keyword() {
        // `position`, `not` etc. without parens are element names.
        let p = parse("not/position/last").unwrap();
        assert_eq!(p.steps.len(), 3);
        assert_eq!(p.steps[0].test, NodeTest::Name("not".into()));
    }
}
