//! Differential testing of the XPath engines against a naive DOM walk.
//!
//! Each corpus entry pairs an XPath string with an *independently written*
//! oracle: a hand-rolled walk over the `xmldom` tree using only primitive
//! navigation (children / descendants / ancestors / siblings / attributes).
//! The oracle shares no code with the parser or the evaluator, so a bug in
//! either shows up as a disagreement. Every query is then evaluated by all
//! four engines — tree-walking, UID arithmetic, rUID arithmetic, and the
//! name-indexed rUID — and all must equal the oracle's node-set exactly
//! (same nodes, document order, no duplicates).

use std::collections::HashMap;

use ruid_core::{PartitionConfig, Ruid2Scheme};
use schemes::uid::UidScheme;
use xmldom::{Document, NodeId};
use xpath::{Evaluator, NameIndex, NameIndexed, RuidAxes, TreeAxes, UidAxes};

const CATALOG: &str = r#"<catalog>
  <book id="b1" lang="en">
    <title>Numbering Schemes</title>
    <author>Kha</author>
    <author>Yoshikawa</author>
    <price>35</price>
  </book>
  <book id="b2">
    <title>Path Indexing</title>
    <author>Lee</author>
    <price>20</price>
    <note>out of <em>print</em></note>
  </book>
  <magazine id="m1">
    <title>XML Weekly</title>
    <price>5</price>
  </magazine>
</catalog>"#;

/// Document-order positions of every node; the oracle uses this to sort
/// and deduplicate its result sets the way a node-set must be returned.
fn positions(doc: &Document) -> HashMap<NodeId, usize> {
    let root = doc.root_element().unwrap();
    doc.descendants(root).enumerate().map(|(i, n)| (n, i)).collect()
}

fn ordered(doc: &Document, mut nodes: Vec<NodeId>) -> Vec<NodeId> {
    let pos = positions(doc);
    nodes.sort_by_key(|n| pos[n]);
    nodes.dedup();
    nodes
}

/// All elements named `name` in the document, in document order.
fn all_named(doc: &Document, name: &str) -> Vec<NodeId> {
    let root = doc.root_element().unwrap();
    doc.descendants(root).filter(|&n| doc.tag_name(n) == Some(name)).collect()
}

/// Element children of `n` named `name`.
fn kids(doc: &Document, n: NodeId, name: &str) -> Vec<NodeId> {
    doc.children(n).filter(|&c| doc.tag_name(c) == Some(name)).collect()
}

type Oracle = fn(&Document) -> Vec<NodeId>;

/// The fixed corpus: (query, naive oracle). Oracles use only primitive
/// DOM navigation — never the xpath crate.
fn corpus() -> Vec<(&'static str, Oracle)> {
    vec![
        ("//title", |d| all_named(d, "title")),
        ("//em", |d| all_named(d, "em")),
        ("/*", |d| {
            let root = d.root_element().unwrap();
            d.children(root).filter(|&c| d.tag_name(c).is_some()).collect()
        }),
        ("/book/title", |d| {
            let root = d.root_element().unwrap();
            kids(d, root, "book").into_iter().flat_map(|b| kids(d, b, "title")).collect()
        }),
        ("/book[1]/author", |d| {
            let root = d.root_element().unwrap();
            kids(d, root, "book")
                .first()
                .map(|&b| kids(d, b, "author"))
                .unwrap_or_default()
        }),
        ("//book/author[1]", |d| {
            all_named(d, "book")
                .into_iter()
                .filter_map(|b| kids(d, b, "author").first().copied())
                .collect()
        }),
        ("//book[@id='b2']/title", |d| {
            all_named(d, "book")
                .into_iter()
                .filter(|&b| d.attribute(b, "id") == Some("b2"))
                .flat_map(|b| kids(d, b, "title"))
                .collect()
        }),
        ("//*[@id]", |d| {
            let root = d.root_element().unwrap();
            d.descendants(root)
                .filter(|&n| d.tag_name(n).is_some() && d.attribute(n, "id").is_some())
                .collect()
        }),
        ("//book[price > 25]/title", |d| {
            all_named(d, "book")
                .into_iter()
                .filter(|&b| {
                    kids(d, b, "price")
                        .iter()
                        .any(|&p| d.string_value(p).trim().parse::<f64>().is_ok_and(|v| v > 25.0))
                })
                .flat_map(|b| kids(d, b, "title"))
                .collect()
        }),
        ("//note//em", |d| {
            let hits: Vec<NodeId> = all_named(d, "note")
                .into_iter()
                .flat_map(|n| {
                    d.descendants(n)
                        .skip(1)
                        .filter(|&m| d.tag_name(m) == Some("em"))
                        .collect::<Vec<_>>()
                })
                .collect();
            ordered(d, hits)
        }),
        ("//book/descendant::em", |d| {
            let hits: Vec<NodeId> = all_named(d, "book")
                .into_iter()
                .flat_map(|b| {
                    d.descendants(b)
                        .skip(1)
                        .filter(|&m| d.tag_name(m) == Some("em"))
                        .collect::<Vec<_>>()
                })
                .collect();
            ordered(d, hits)
        }),
        ("//em/ancestor::book", |d| {
            let hits: Vec<NodeId> = all_named(d, "em")
                .into_iter()
                .flat_map(|e| {
                    d.ancestors(e)
                        .filter(|&a| d.tag_name(a) == Some("book"))
                        .collect::<Vec<_>>()
                })
                .collect();
            ordered(d, hits)
        }),
        ("//title/parent::*", |d| {
            let hits: Vec<NodeId> =
                all_named(d, "title").into_iter().filter_map(|t| d.parent(t)).collect();
            ordered(d, hits)
        }),
        ("//author/following-sibling::price", |d| {
            let hits: Vec<NodeId> = all_named(d, "author")
                .into_iter()
                .flat_map(|a| {
                    d.following_siblings(a)
                        .filter(|&s| d.tag_name(s) == Some("price"))
                        .collect::<Vec<_>>()
                })
                .collect();
            ordered(d, hits)
        }),
        ("//price/preceding-sibling::author", |d| {
            let hits: Vec<NodeId> = all_named(d, "price")
                .into_iter()
                .flat_map(|p| {
                    d.preceding_siblings(p)
                        .filter(|&s| d.tag_name(s) == Some("author"))
                        .collect::<Vec<_>>()
                })
                .collect();
            ordered(d, hits)
        }),
        ("//magazine/preceding::title", |d| {
            let pos = positions(d);
            let hits: Vec<NodeId> = all_named(d, "magazine")
                .into_iter()
                .flat_map(|m| {
                    all_named(d, "title")
                        .into_iter()
                        .filter(|&t| pos[&t] < pos[&m] && !d.is_ancestor_of(t, m))
                        .collect::<Vec<_>>()
                })
                .collect();
            ordered(d, hits)
        }),
        ("//book/following::magazine", |d| {
            let pos = positions(d);
            let hits: Vec<NodeId> = all_named(d, "book")
                .into_iter()
                .flat_map(|b| {
                    all_named(d, "magazine")
                        .into_iter()
                        .filter(|&m| pos[&m] > pos[&b] && !d.is_ancestor_of(b, m))
                        .collect::<Vec<_>>()
                })
                .collect();
            ordered(d, hits)
        }),
    ]
}

/// Structural queries for the generated XMark-like document.
fn xmark_corpus() -> Vec<(&'static str, Oracle)> {
    vec![
        ("//item/name", |d| {
            all_named(d, "item").into_iter().flat_map(|i| kids(d, i, "name")).collect()
        }),
        ("//person/address/city", |d| {
            all_named(d, "person")
                .into_iter()
                .flat_map(|p| kids(d, p, "address"))
                .flat_map(|a| kids(d, a, "city"))
                .collect()
        }),
        ("//open_auction/bidder", |d| {
            all_named(d, "open_auction")
                .into_iter()
                .flat_map(|a| kids(d, a, "bidder"))
                .collect()
        }),
        ("//bidder/parent::*", |d| {
            let hits: Vec<NodeId> =
                all_named(d, "bidder").into_iter().filter_map(|b| d.parent(b)).collect();
            ordered(d, hits)
        }),
        ("//city/ancestor::person", |d| {
            let hits: Vec<NodeId> = all_named(d, "city")
                .into_iter()
                .flat_map(|c| {
                    d.ancestors(c)
                        .filter(|&a| d.tag_name(a) == Some("person"))
                        .collect::<Vec<_>>()
                })
                .collect();
            ordered(d, hits)
        }),
    ]
}

/// Evaluates `query` with all four engines and checks each against the
/// oracle's node-set.
fn check_case(doc: &Document, query: &str, oracle: Oracle) {
    let expected = oracle(doc);
    let uid = UidScheme::build(doc);
    let ruid = Ruid2Scheme::build(doc, &PartitionConfig::by_depth(3));
    let index = NameIndex::build(doc);

    let engines: Vec<(&str, Vec<NodeId>)> = vec![
        ("tree", Evaluator::new(doc, TreeAxes::new(doc)).query(query).unwrap()),
        ("uid", Evaluator::new(doc, UidAxes::new(&uid)).query(query).unwrap()),
        ("ruid", Evaluator::new(doc, RuidAxes::new(&ruid)).query(query).unwrap()),
        (
            "indexed",
            Evaluator::new(doc, NameIndexed::new(RuidAxes::new(&ruid), doc, &index))
                .query(query)
                .unwrap(),
        ),
    ];
    for (engine, got) in engines {
        assert_eq!(
            got, expected,
            "{engine} engine disagrees with the naive DOM walk on {query:?}"
        );
    }
}

#[test]
fn engines_match_naive_dom_walk_on_catalog() {
    let doc = Document::parse(CATALOG).unwrap();
    for (query, oracle) in corpus() {
        check_case(&doc, query, oracle);
    }
}

#[test]
fn engines_match_naive_dom_walk_on_xmark() {
    let doc = xmlgen::xmark::generate(&xmlgen::xmark::XmarkConfig {
        items_per_region: 2,
        people: 6,
        open_auctions: 4,
        closed_auctions: 2,
        categories: 3,
        seed: 99,
    });
    for (query, oracle) in xmark_corpus() {
        check_case(&doc, query, oracle);
    }
}

/// The corpus itself must not be vacuous: most oracles return nodes.
#[test]
fn corpus_is_not_vacuous() {
    let doc = Document::parse(CATALOG).unwrap();
    let nonempty = corpus().iter().filter(|(_, o)| !o(&doc).is_empty()).count();
    assert!(nonempty >= 15, "only {nonempty} catalog queries matched anything");
}
