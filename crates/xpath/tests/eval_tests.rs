//! Evaluator semantics (hand-checked expectations) and differential tests:
//! the tree-walking, UID-accelerated and rUID-accelerated evaluators must
//! produce identical node-sets for every query.

use ruid_core::{PartitionConfig, Ruid2Scheme};
use schemes::uid::UidScheme;
use xmldom::Document;
use xpath::{Evaluator, NameIndex, NameIndexed, RuidAxes, TreeAxes, UidAxes};

const CATALOG: &str = r#"<catalog>
  <book id="b1" lang="en">
    <title>Numbering Schemes</title>
    <author>Kha</author>
    <author>Yoshikawa</author>
    <price>35</price>
  </book>
  <book id="b2">
    <title>Path Indexing</title>
    <author>Lee</author>
    <price>20</price>
    <note>out of <em>print</em></note>
  </book>
  <magazine id="m1">
    <title>XML Weekly</title>
    <price>5</price>
  </magazine>
</catalog>"#;

fn tags(doc: &Document, nodes: &[xmldom::NodeId]) -> Vec<String> {
    nodes
        .iter()
        .map(|&n| {
            doc.tag_name(n)
                .map(str::to_owned)
                .unwrap_or_else(|| format!("{:?}", doc.kind(n)))
        })
        .collect()
}

fn string_values(doc: &Document, nodes: &[xmldom::NodeId]) -> Vec<String> {
    nodes.iter().map(|&n| doc.string_value(n)).collect()
}

fn eval_tree(doc: &Document, query: &str) -> Vec<xmldom::NodeId> {
    Evaluator::new(doc, TreeAxes::new(doc)).query(query).unwrap()
}

#[test]
fn child_steps() {
    let doc = Document::parse(CATALOG).unwrap();
    let r = eval_tree(&doc, "/book/title");
    assert_eq!(string_values(&doc, &r), vec!["Numbering Schemes", "Path Indexing"]);
}

#[test]
fn descendant_shorthand() {
    let doc = Document::parse(CATALOG).unwrap();
    let r = eval_tree(&doc, "//title");
    assert_eq!(r.len(), 3);
    let r = eval_tree(&doc, "//em");
    assert_eq!(string_values(&doc, &r), vec!["print"]);
}

#[test]
fn wildcard_and_node() {
    let doc = Document::parse(CATALOG).unwrap();
    assert_eq!(eval_tree(&doc, "/*").len(), 3);
    // node() includes the text children too.
    let r = eval_tree(&doc, "/book/title/node()");
    assert_eq!(r.len(), 2);
}

#[test]
fn positional_predicates() {
    let doc = Document::parse(CATALOG).unwrap();
    let r = eval_tree(&doc, "/book[2]/author");
    assert_eq!(string_values(&doc, &r), vec!["Lee"]);
    let r = eval_tree(&doc, "/book[1]/author[2]");
    assert_eq!(string_values(&doc, &r), vec!["Yoshikawa"]);
    let r = eval_tree(&doc, "/book[last()]");
    assert_eq!(string_values(&doc, &r[..1]), vec!["Path IndexingLee20out of print"]);
}

#[test]
fn attribute_predicates() {
    let doc = Document::parse(CATALOG).unwrap();
    let r = eval_tree(&doc, "//book[@id='b2']/title");
    assert_eq!(string_values(&doc, &r), vec!["Path Indexing"]);
    let r = eval_tree(&doc, "//book[@lang]");
    assert_eq!(r.len(), 1);
    let r = eval_tree(&doc, "//book[not(@lang)]");
    assert_eq!(r.len(), 1);
}

#[test]
fn value_comparisons() {
    let doc = Document::parse(CATALOG).unwrap();
    let r = eval_tree(&doc, "//book[price > 25]/title");
    assert_eq!(string_values(&doc, &r), vec!["Numbering Schemes"]);
    let r = eval_tree(&doc, "//*[price <= 20]");
    assert_eq!(tags(&doc, &r), vec!["book", "magazine"]);
    let r = eval_tree(&doc, "//book[author = 'Lee']");
    assert_eq!(r.len(), 1);
    let r = eval_tree(&doc, "//book[title != 'Path Indexing']");
    assert_eq!(r.len(), 1);
}

#[test]
fn boolean_connectives() {
    let doc = Document::parse(CATALOG).unwrap();
    let r = eval_tree(&doc, "//book[price > 10 and price < 30]");
    assert_eq!(r.len(), 1);
    let r = eval_tree(&doc, "//*[title='XML Weekly' or author='Kha']");
    assert_eq!(tags(&doc, &r), vec!["book", "magazine"]);
}

#[test]
fn count_function() {
    let doc = Document::parse(CATALOG).unwrap();
    let r = eval_tree(&doc, "//book[count(author) = 2]");
    assert_eq!(r.len(), 1);
    let r = eval_tree(&doc, "//book[count(author) >= 1]");
    assert_eq!(r.len(), 2);
}

#[test]
fn parent_and_ancestor_axes() {
    let doc = Document::parse(CATALOG).unwrap();
    let r = eval_tree(&doc, "//em/parent::note");
    assert_eq!(tags(&doc, &r), vec!["note"]);
    let r = eval_tree(&doc, "//em/ancestor::book");
    assert_eq!(r.len(), 1);
    let r = eval_tree(&doc, "//em/ancestor-or-self::*");
    assert_eq!(tags(&doc, &r), vec!["catalog", "book", "note", "em"]);
    let r = eval_tree(&doc, "//title/..");
    assert_eq!(tags(&doc, &r), vec!["book", "book", "magazine"]);
}

#[test]
fn paper_grandparent_pattern() {
    // The paper's Section 3.5 example: element1/*/element2 — exactly one
    // element between. Here: catalog/*/title via the wildcard.
    let doc = Document::parse(CATALOG).unwrap();
    let r = eval_tree(&doc, "/*/title");
    assert_eq!(r.len(), 3);
}

#[test]
fn sibling_axes() {
    let doc = Document::parse(CATALOG).unwrap();
    let r = eval_tree(&doc, "//title/following-sibling::price");
    assert_eq!(r.len(), 3);
    let r = eval_tree(&doc, "//price/preceding-sibling::author[1]");
    // Proximity order: nearest preceding author for each price.
    assert_eq!(string_values(&doc, &r), vec!["Yoshikawa", "Lee"]);
    let r = eval_tree(&doc, "//book[1]/following-sibling::*");
    assert_eq!(tags(&doc, &r), vec!["book", "magazine"]);
}

#[test]
fn following_preceding_axes() {
    let doc = Document::parse(CATALOG).unwrap();
    // em is a descendant of note, so it is excluded from following.
    let r = eval_tree(&doc, "//note/following::*");
    assert_eq!(tags(&doc, &r), vec!["magazine", "title", "price"]);
    let r = eval_tree(&doc, "//magazine/preceding::price");
    assert_eq!(string_values(&doc, &r), vec!["35", "20"]);
    // preceding with positional predicate counts from the nearest.
    let r = eval_tree(&doc, "//magazine/preceding::price[1]");
    assert_eq!(string_values(&doc, &r), vec!["20"]);
}

#[test]
fn text_and_comment_tests() {
    let doc = Document::parse("<a>one<b>two</b><!--note--><?pi data?></a>").unwrap();
    let r = eval_tree(&doc, "/text()");
    assert_eq!(r.len(), 1);
    let r = eval_tree(&doc, "//text()");
    assert_eq!(r.len(), 2);
    let r = eval_tree(&doc, "/comment()");
    assert_eq!(r.len(), 1);
    let r = eval_tree(&doc, "/processing-instruction()");
    assert_eq!(r.len(), 1);
    let r = eval_tree(&doc, "/processing-instruction('pi')");
    assert_eq!(r.len(), 1);
    let r = eval_tree(&doc, "/processing-instruction('other')");
    assert!(r.is_empty());
}

#[test]
fn existence_path_predicate() {
    let doc = Document::parse(CATALOG).unwrap();
    let r = eval_tree(&doc, "//book[note]");
    assert_eq!(r.len(), 1);
    let r = eval_tree(&doc, "//book[note/em]");
    assert_eq!(r.len(), 1);
    let r = eval_tree(&doc, "//book[missing]");
    assert!(r.is_empty());
}

#[test]
fn attribute_result_is_error() {
    let doc = Document::parse(CATALOG).unwrap();
    let e = Evaluator::new(&doc, TreeAxes::new(&doc));
    assert!(e.query("//book/@id").is_err());
    // But attribute at the end of a predicate path works.
    let r = e.query("//book[title/@missing]").unwrap();
    assert!(r.is_empty());
}

#[test]
fn self_axis_and_dot() {
    let doc = Document::parse(CATALOG).unwrap();
    let r = eval_tree(&doc, "//book/self::book");
    assert_eq!(r.len(), 2);
    let r = eval_tree(&doc, "//book/.");
    assert_eq!(r.len(), 2);
}

#[test]
fn root_only_query() {
    let doc = Document::parse(CATALOG).unwrap();
    let r = eval_tree(&doc, "/");
    assert_eq!(tags(&doc, &r), vec!["catalog"]);
}

#[test]
fn string_functions() {
    let doc = Document::parse(CATALOG).unwrap();
    let r = eval_tree(&doc, "//book[contains(title, 'Index')]");
    assert_eq!(r.len(), 1);
    let r = eval_tree(&doc, "//*[starts-with(title, 'Numbering')]");
    assert_eq!(r.len(), 1);
    let r = eval_tree(&doc, "//book[contains(@id, 'b')]");
    assert_eq!(r.len(), 2);
    let r = eval_tree(&doc, "//book[string-length(title) > 13]");
    assert_eq!(string_values(&doc, &r), vec!["Numbering SchemesKhaYoshikawa35"]);
    let r = eval_tree(&doc, "//*[name() = 'magazine']");
    assert_eq!(r.len(), 1);
    let r = eval_tree(&doc, "//book[not(contains(title, 'Path'))]");
    assert_eq!(r.len(), 1);
    // string-length of an attribute; numeric comparisons with it.
    let r = eval_tree(&doc, "//*[string-length(@id) = 2]");
    assert_eq!(r.len(), 3);
}

#[test]
fn string_functions_parse_errors() {
    assert!(xpath::parse("a[contains(b)]").is_err());
    assert!(xpath::parse("a[contains(b, c]").is_err());
    assert!(xpath::parse("a[string-length()]").is_err());
    // Elements named like the functions still work as steps.
    let p = xpath::parse("contains/starts-with/string-length").unwrap();
    assert_eq!(p.steps.len(), 3);
}

// --- differential tests ----------------------------------------------------

/// A query suite exercising every axis and predicate form.
const SUITE: &[&str] = &[
    "/",
    "/*",
    "//*",
    "//lvl2",
    "/lvl1/lvl2",
    "//lvl3/parent::*",
    "//lvl3/ancestor::*",
    "//lvl3/ancestor-or-self::lvl2",
    "//lvl2/descendant::lvl4",
    "//lvl2/descendant-or-self::*",
    "//lvl2[1]/following-sibling::*",
    "//lvl2[last()]/preceding-sibling::*",
    "//lvl3/following::lvl2",
    "//lvl3/preceding::*",
    "//lvl2[lvl3]",
    "//lvl2[not(lvl3)]",
    "//lvl2[count(lvl3) >= 2]",
    "//*[lvl3 and lvl2]",
    "//lvl2[2]",
    "//lvl3[position() = 2]",
    "//lvl2/*/lvl4",
    "//lvl2[contains(name(), 'lvl')]",
    "//*[starts-with(name(), 'lvl3')]",
    "//lvl2[string-length(name()) >= 4]",
];

#[test]
fn providers_agree_on_random_documents() {
    for seed in [1u64, 2, 3] {
        let doc = xmlgen::random_tree(&xmlgen::TreeGenConfig {
            nodes: 250,
            max_fanout: 5,
            depth_bias: 0.2,
            seed,
            ..Default::default()
        });
        let uid_scheme = UidScheme::build(&doc);
        let ruid_scheme = Ruid2Scheme::build(&doc, &PartitionConfig::by_depth(2));
        let tree = Evaluator::new(&doc, TreeAxes::new(&doc));
        let uid = Evaluator::new(&doc, UidAxes::new(&uid_scheme));
        let ruid = Evaluator::new(&doc, RuidAxes::new(&ruid_scheme));
        for query in SUITE {
            let a = tree.query(query).unwrap();
            let b = uid.query(query).unwrap();
            let c = ruid.query(query).unwrap();
            assert_eq!(a, b, "tree vs uid on {query} (seed {seed})");
            assert_eq!(a, c, "tree vs ruid on {query} (seed {seed})");
        }
    }
}

#[test]
fn name_indexed_provider_agrees() {
    for seed in [4u64, 5] {
        let doc = xmlgen::random_tree(&xmlgen::TreeGenConfig {
            nodes: 250,
            max_fanout: 5,
            depth_bias: 0.2,
            seed,
            ..Default::default()
        });
        let ruid_scheme = Ruid2Scheme::build(&doc, &PartitionConfig::by_depth(2));
        let index = NameIndex::build(&doc);
        let tree = Evaluator::new(&doc, TreeAxes::new(&doc));
        let indexed =
            Evaluator::new(&doc, NameIndexed::new(RuidAxes::new(&ruid_scheme), &doc, &index));
        for query in SUITE {
            assert_eq!(
                tree.query(query).unwrap(),
                indexed.query(query).unwrap(),
                "tree vs name-indexed ruid on {query} (seed {seed})"
            );
        }
    }
}

#[test]
fn name_index_lookup() {
    let doc = Document::parse(CATALOG).unwrap();
    let index = NameIndex::build(&doc);
    assert_eq!(index.nodes_named(&doc, "book").len(), 2);
    assert_eq!(index.nodes_named(&doc, "title").len(), 3);
    assert_eq!(index.nodes_named(&doc, "nosuch").len(), 0);
    assert!(index.name_count() >= 7);
}

#[test]
fn providers_agree_on_xmark() {
    let doc = xmlgen::xmark::generate(&xmlgen::xmark::XmarkConfig::default());
    let uid_scheme = UidScheme::build(&doc);
    let ruid_scheme = Ruid2Scheme::build(&doc, &PartitionConfig::by_depth(3));
    let tree = Evaluator::new(&doc, TreeAxes::new(&doc));
    let uid = Evaluator::new(&doc, UidAxes::new(&uid_scheme));
    let ruid = Evaluator::new(&doc, RuidAxes::new(&ruid_scheme));
    for query in [
        "/regions/europe/item",
        "//item[@id='item3']",
        "//person[address]/name",
        "//open_auction[bidder/increase > 10]",
        "//bidder[1]/increase",
        "//item/incategory[@category='category0']",
        "//closed_auction/price",
        "//person[profile/@income > 50000]",
        "//item[location = 'asia']/name",
        "//categories/category[2]",
        "//open_auction[count(bidder) >= 2]",
        "//regions/*/item[1]",
    ] {
        let a = tree.query(query).unwrap();
        let b = uid.query(query).unwrap();
        let c = ruid.query(query).unwrap();
        assert_eq!(a, b, "tree vs uid on {query}");
        assert_eq!(a, c, "tree vs ruid on {query}");
        // Results are in document order without duplicates.
        for pair in a.windows(2) {
            assert_eq!(
                doc.cmp_document_order(pair[0], pair[1]),
                std::cmp::Ordering::Less
            );
        }
    }
}

#[test]
fn relative_evaluation_from_inner_context() {
    let doc = Document::parse(CATALOG).unwrap();
    let tree = Evaluator::new(&doc, TreeAxes::new(&doc));
    let book2 = tree.query("/book[2]").unwrap()[0];
    // Relative paths start at the given context node.
    let path = xpath::parse("author").unwrap();
    let r = tree.evaluate(&path, book2).unwrap();
    assert_eq!(string_values(&doc, &r), vec!["Lee"]);
    // Absolute paths ignore the context.
    let path = xpath::parse("/book[1]/author").unwrap();
    let r = tree.evaluate(&path, book2).unwrap();
    assert_eq!(r.len(), 2);
    // `..` climbs from the context.
    let path = xpath::parse("../magazine/title").unwrap();
    let r = tree.evaluate(&path, book2).unwrap();
    assert_eq!(string_values(&doc, &r), vec!["XML Weekly"]);
}

#[test]
fn providers_agree_on_wide_dblp() {
    // DBLP-lite: the wide-flat regime where the original UID's k explodes.
    let doc = xmlgen::dblp::generate(&xmlgen::dblp::DblpConfig { publications: 60, seed: 2 });
    let uid_scheme = UidScheme::build(&doc);
    assert!(uid_scheme.k() >= 60, "premise: root fan-out dominates");
    let ruid_scheme = Ruid2Scheme::build(&doc, &PartitionConfig::by_depth(1));
    let tree = Evaluator::new(&doc, TreeAxes::new(&doc));
    let uid = Evaluator::new(&doc, UidAxes::new(&uid_scheme));
    let ruid = Evaluator::new(&doc, RuidAxes::new(&ruid_scheme));
    for query in [
        "/article/title",
        "//author",
        "//inproceedings[year > 2000]",
        "//article[contains(@key, 'article/1')]",
        "//year[. = '1999']/..",
        "/article[2]/following-sibling::inproceedings[1]",
    ] {
        let a = tree.query(query).unwrap();
        assert_eq!(a, uid.query(query).unwrap(), "uid on {query}");
        assert_eq!(a, ruid.query(query).unwrap(), "ruid on {query}");
    }
}

#[test]
fn peephole_preserves_positional_semantics() {
    // `//b[2]` selects b elements that are the SECOND b child of their
    // parent — the collapsed descendant form must not be used here.
    let doc = Document::parse("<a><x><b id=\"1\"/><b id=\"2\"/></x><y><b id=\"3\"/></y></a>").unwrap();
    let ruid_scheme = Ruid2Scheme::build(&doc, &PartitionConfig::by_depth(2));
    let index = NameIndex::build(&doc);
    let indexed =
        Evaluator::new(&doc, NameIndexed::new(RuidAxes::new(&ruid_scheme), &doc, &index));
    let tree = Evaluator::new(&doc, TreeAxes::new(&doc));
    for q in ["//b[2]", "//b[position() = 2]", "//b[last()]"] {
        assert_eq!(tree.query(q).unwrap(), indexed.query(q).unwrap(), "{q}");
    }
    // Non-positional predicates DO take the collapsed path and agree too.
    for q in ["//b[@id='2']", "//b[not(@id='1')]"] {
        assert_eq!(tree.query(q).unwrap(), indexed.query(q).unwrap(), "{q}");
    }
    // Sanity: `//b[2]` has exactly one hit (the x-child), not "the second
    // of all b descendants".
    let hits = tree.query("//b[2]").unwrap();
    assert_eq!(hits.len(), 1);
    assert_eq!(doc.attribute(hits[0], "id"), Some("2"));
}

#[test]
fn name_index_composes_with_any_provider() {
    // NameIndexed is generic: wrap the UID provider too and the TreeAxes.
    let doc = xmlgen::random_tree(&xmlgen::TreeGenConfig {
        nodes: 150,
        max_fanout: 4,
        seed: 8,
        ..Default::default()
    });
    let uid_scheme = UidScheme::build(&doc);
    let index = NameIndex::build(&doc);
    let plain = Evaluator::new(&doc, TreeAxes::new(&doc));
    let uid_indexed =
        Evaluator::new(&doc, NameIndexed::new(UidAxes::new(&uid_scheme), &doc, &index));
    let tree_indexed =
        Evaluator::new(&doc, NameIndexed::new(TreeAxes::new(&doc), &doc, &index));
    for q in ["//lvl3", "//lvl2[lvl3]", "/lvl1/lvl2", "//lvl4/ancestor::lvl2"] {
        let expected = plain.query(q).unwrap();
        assert_eq!(uid_indexed.query(q).unwrap(), expected, "uid+index on {q}");
        assert_eq!(tree_indexed.query(q).unwrap(), expected, "tree+index on {q}");
    }
}
