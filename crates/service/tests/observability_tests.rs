//! Observability end-to-end: tracing + slowlog through the wire protocol,
//! the Prometheus exposition over both transports, and the graceful-
//! shutdown durability promise.

use std::io::{Read, Write};
use std::net::TcpStream;

use ruid_service::{Client, FsyncPolicy, Server, ServerConfig, ServerHandle};

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("ruid-observability-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_sample(dir: &std::path::Path, name: &str, xml: &str) -> String {
    let path = dir.join(name);
    std::fs::write(&path, xml).unwrap();
    path.display().to_string()
}

fn start(config: ServerConfig) -> (ServerHandle, Client) {
    let handle = Server::start(config).unwrap();
    let client = Client::connect(handle.addr()).unwrap();
    (handle, client)
}

fn load(client: &mut Client, path: &str) -> u64 {
    let resp = client.request(&format!("LOAD {path}")).unwrap();
    assert!(resp.starts_with("OK id="), "{resp}");
    resp.split_whitespace()
        .find_map(|t| t.strip_prefix("id="))
        .unwrap()
        .parse()
        .unwrap()
}

#[test]
fn trace_and_slowlog_capture_span_breakdowns() {
    let dir = scratch("slowlog");
    let sample = write_sample(&dir, "s.xml", "<r><a><b>x</b></a><a><b>y</b></a></r>");
    let (handle, mut client) = start(ServerConfig::default());
    let id = load(&mut client, &sample);

    // Tracing is off by default and free to query.
    let status = client.request("TRACE").unwrap();
    assert!(status.contains("trace=off"), "{status}");
    let log = client.request("SLOWLOG").unwrap();
    assert!(log.starts_with("OK n=0"), "{log}");

    // Threshold 0 = capture everything (the test's queries are fast).
    let status = client.request("TRACE 0").unwrap();
    assert!(status.contains("trace=on") && status.contains("threshold_ms=0"), "{status}");
    let q = format!("QUERY {id} //a/b");
    assert!(client.request(&q).unwrap().starts_with("OK 2 "));

    let log = client.request("SLOWLOG 5").unwrap();
    assert!(log.contains("cmd=QUERY"), "{log}");
    for span in ["parse_ns=", "lookup_ns=", "eval_ns=", "wal_ns=", "write_ns="] {
        assert!(log.contains(span), "missing {span} in {log}");
    }
    assert!(log.contains(&format!("line=QUERY {id} //a/b")), "{log}");
    // The traced spans hold real time: parse and eval both ran.
    let eval_ns: u64 = log
        .split_whitespace()
        .find_map(|t| t.strip_prefix("eval_ns="))
        .unwrap()
        .parse()
        .unwrap();
    assert!(eval_ns > 0, "eval span empty in {log}");

    // TRACE off stops new captures but keeps the ring. (The TRACE off
    // request itself still counts — it began while tracing was on.)
    assert!(client.request("TRACE off").unwrap().contains("trace=off"));
    let captured = |status: &str| -> u64 {
        status
            .split_whitespace()
            .find_map(|t| t.strip_prefix("captured="))
            .unwrap()
            .parse()
            .unwrap()
    };
    let before = captured(&client.request("TRACE").unwrap());
    assert!(client.request(&q).unwrap().starts_with("OK 2 "));
    let status = client.request("TRACE").unwrap();
    assert_eq!(captured(&status), before, "{status}");
    handle.stop();
}

/// Reads one HTTP response from the metrics endpoint, returning
/// `(head, body)`.
fn scrape(addr: std::net::SocketAddr) -> (String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(b"GET /metrics HTTP/1.0\r\nHost: test\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response.split_once("\r\n\r\n").expect("header/body split");
    (head.to_string(), body.to_string())
}

#[test]
fn prometheus_exposition_over_wire_and_http() {
    let dir = scratch("prom");
    let sample = write_sample(&dir, "p.xml", "<r><x><y/></x><x><y/><y/></x></r>");
    let config = ServerConfig {
        data_dir: Some(dir.join("data")),
        fsync: FsyncPolicy::Always,
        metrics_addr: Some("127.0.0.1:0".into()),
        ..ServerConfig::default()
    };
    let (handle, mut client) = start(config);
    let id = load(&mut client, &sample);
    // Two planned (default engine; second one a cache hit) plus one
    // explicitly indexed, so both the plan-operator and the axis-step
    // families see traffic.
    for engine in ["", "", " indexed"] {
        assert!(
            client.request(&format!("QUERY {id} //x/y{engine}")).unwrap().starts_with("OK 3"),
        );
    }

    // Wire transport: METRICS prom answers one escaped line.
    let wire = client.request("METRICS prom").unwrap();
    assert!(wire.starts_with("OK # HELP"), "{wire}");
    assert!(wire.contains("ruid_requests_total{command=\"query\"} 3"), "{wire}");

    // HTTP transport: a real scrape with headers and the same families.
    let addr = handle.metrics_http_addr().expect("metrics endpoint configured");
    let (head, body) = scrape(addr);
    assert!(head.starts_with("HTTP/1.0 200 OK"), "{head}");
    assert!(head.contains("text/plain; version=0.0.4"), "{head}");
    let content_length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .unwrap()
        .parse()
        .unwrap();
    assert_eq!(content_length, body.len(), "Content-Length mismatch");

    assert!(body.contains("ruid_connections_total"), "{body}");
    assert!(body.contains("ruid_requests_total{command=\"load\"} 1"), "{body}");
    assert!(body.contains("ruid_wal_records_total 1"), "{body}");
    assert!(body.contains("ruid_wal_unsynced_records 0"), "{body}");
    assert!(body.contains("ruid_pool_jobs_submitted_total"), "{body}");
    assert!(body.contains("ruid_trace_enabled 0"), "{body}");
    // The //x/y queries walked the descendant and child axes.
    let steps_of = |axis: &str| -> u64 {
        body.lines()
            .find_map(|l| l.strip_prefix(&format!("ruid_xpath_steps_total{{axis=\"{axis}\"}} ")))
            .unwrap()
            .parse()
            .unwrap()
    };
    assert!(steps_of("descendant") + steps_of("descendant-or-self") > 0, "{body}");
    assert!(steps_of("child") > 0, "{body}");
    // The planned queries compiled //x/y to two summary scans; the repeat
    // was served from the generation-keyed cache.
    let metric_of = |name: &str| -> u64 {
        body.lines()
            .find_map(|l| l.strip_prefix(&format!("{name} ")))
            .unwrap_or_else(|| panic!("missing {name} in {body}"))
            .parse()
            .unwrap()
    };
    assert!(
        body.contains("ruid_plan_operators_total{op=\"scan\"}"),
        "plan operator family missing in {body}"
    );
    let scans = body
        .lines()
        .find_map(|l| l.strip_prefix("ruid_plan_operators_total{op=\"scan\"} "))
        .unwrap()
        .parse::<u64>()
        .unwrap();
    assert!(scans >= 2, "expected //x/y scans, got {scans}");
    assert_eq!(metric_of("ruid_plan_cache_hits_total"), 1, "repeat query served from cache");
    assert_eq!(metric_of("ruid_plan_cache_misses_total"), 1);
    assert_eq!(metric_of("ruid_plan_cache_entries"), 1);
    assert!(
        metric_of("ruid_planner_duration_seconds_count{engine=\"planned\"}") >= 1,
        "{body}"
    );

    // The query histogram's cumulative buckets are monotone and end at
    // the sample count.
    let mut last = 0u64;
    let mut bucket_lines = 0u32;
    let mut inf = None;
    for line in body.lines() {
        if let Some(rest) =
            line.strip_prefix("ruid_request_duration_seconds_bucket{command=\"query\",le=\"")
        {
            let v: u64 = rest.split_whitespace().last().unwrap().parse().unwrap();
            assert!(v >= last, "cumulative bucket shrank: {line}");
            last = v;
            bucket_lines += 1;
            if rest.starts_with("+Inf") {
                inf = Some(v);
            }
        }
    }
    assert!(bucket_lines > 10, "expected a full bucket ladder, got {bucket_lines}");
    assert_eq!(inf, Some(3), "+Inf bucket must equal the QUERY count");
    assert!(
        body.contains("ruid_request_duration_seconds_count{command=\"query\"} 3"),
        "{body}"
    );

    // A scrape is read-only: it must not disturb the wire metrics.
    let after = client.request("METRICS").unwrap();
    assert!(after.contains("QUERY=3/0/"), "{after}");
    handle.stop();
}

#[test]
fn shutdown_ack_makes_the_wal_durable_under_lazy_fsync() {
    let dir = scratch("shutdown-fsync");
    let sample = write_sample(&dir, "d.xml", "<r><k/></r>");
    let data_dir = dir.join("data");
    // A huge fsync interval: nothing is synced unless shutdown forces it.
    let config = ServerConfig {
        data_dir: Some(data_dir.clone()),
        fsync: FsyncPolicy::EveryN(1_000_000),
        ..ServerConfig::default()
    };
    let (handle, mut client) = start(config);
    let id = load(&mut client, &sample);
    let metrics = client.request("METRICS").unwrap();
    assert!(metrics.contains("wal_unsynced=1"), "lazy policy must defer: {metrics}");

    // The SHUTDOWN ack is the durability promise: once `OK bye` is on the
    // wire, a kill -9 loses nothing.
    assert_eq!(client.request("SHUTDOWN").unwrap(), "OK bye");
    handle.join();

    let (handle, mut client) = start(ServerConfig {
        data_dir: Some(data_dir),
        fsync: FsyncPolicy::Always,
        ..ServerConfig::default()
    });
    let resp = client.request(&format!("QUERY {id} //k")).unwrap();
    assert!(resp.starts_with("OK 1 "), "record lost across shutdown: {resp}");
    let metrics = client.request("METRICS").unwrap();
    assert!(metrics.contains("replayed=1"), "{metrics}");
    handle.stop();
}
