//! Planner subsystem over the wire: the EXPLAIN verb, byte-identical
//! planned answers, and result-cache lifecycle (hits, generation keying,
//! UNLOAD purge).

use ruid_service::{Client, Server, ServerConfig};
use schemes::NumberingScheme;

fn write_sample(name: &str, xml: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("ruid-planner-test-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sample.xml");
    std::fs::write(&path, xml).unwrap();
    path
}

fn start() -> (ruid_service::ServerHandle, Client) {
    let handle = Server::start(ServerConfig::default()).unwrap();
    let client = Client::connect(handle.addr()).unwrap();
    (handle, client)
}

fn load(client: &mut Client, path: &std::path::Path) -> u64 {
    let resp = client.request(&format!("LOAD {}", path.display())).unwrap();
    assert!(resp.starts_with("OK id="), "{resp}");
    resp.split_whitespace()
        .find_map(|t| t.strip_prefix("id="))
        .unwrap()
        .parse()
        .unwrap()
}

const SAMPLE: &str = "<catalog><book id=\"b1\"><title>A</title><price>35</price></book>\
     <book id=\"b2\"><title>B</title><price>20</price></book>\
     <journal><title>J</title></journal></catalog>";

#[test]
fn explain_reports_plan_shape_and_cache_status() {
    let sample = write_sample("explain", SAMPLE);
    let (handle, mut client) = start();
    let id = load(&mut client, &sample);

    // Cold EXPLAIN: a miss, rendering the chosen operators with estimated
    // and actual cardinalities. (EXPLAIN itself never populates the cache.)
    let resp = client.request(&format!("EXPLAIN {id} //book/title")).unwrap();
    assert!(resp.starts_with("OK cache=miss"), "{resp}");
    assert!(resp.contains("fully planned"), "{resp}");
    assert!(resp.contains("scan"), "{resp}");
    assert!(resp.contains("est="), "{resp}");
    assert!(resp.contains("actual="), "{resp}");
    assert!(resp.contains("rows=2"), "{resp}");
    assert!(
        client.request(&format!("EXPLAIN {id} //book/title")).unwrap().contains("cache=miss"),
        "EXPLAIN must not warm the cache"
    );

    // A planned QUERY caches the answer; EXPLAIN now reports a hit.
    let answer = client.request(&format!("QUERY {id} //book/title")).unwrap();
    assert!(answer.starts_with("OK 2 "), "{answer}");
    let resp = client.request(&format!("EXPLAIN {id} //book/title")).unwrap();
    assert!(resp.starts_with("OK cache=hit"), "{resp}");

    // A predicate query shows selectivity-ordered predicates and a
    // containment join for the descendant step after the filter.
    let resp =
        client.request(&format!("EXPLAIN {id} //book[price > 25]//title")).unwrap();
    assert!(resp.contains("predicates"), "{resp}");
    assert!(resp.contains("containment-join"), "{resp}");

    // A positional predicate cannot be planned structurally: the plan falls
    // back to the step-by-step evaluator and says so.
    let resp = client.request(&format!("EXPLAIN {id} //book[1]")).unwrap();
    assert!(resp.contains("fallback"), "{resp}");

    // Errors: usage and unknown document.
    assert!(client.request("EXPLAIN").unwrap().starts_with("ERR usage:"));
    assert!(client.request(&format!("EXPLAIN {id}")).unwrap().starts_with("ERR usage:"));
    assert!(client.request("EXPLAIN 9999 //book").unwrap().starts_with("ERR no document"));
    handle.stop();
}

#[test]
fn planned_answers_are_byte_identical_to_every_engine() {
    let sample = write_sample("identical", SAMPLE);
    let (handle, mut client) = start();
    let id = load(&mut client, &sample);

    for q in [
        "//book",
        "//book/title",
        "//title",
        "/catalog/*",
        "//book[price > 25]/title",
        "//book[@id='b2']",
        "//book[1]",
        "//catalog//title",
    ] {
        let mut answers = Vec::new();
        for engine in ["tree", "ruid", "indexed", "planned", "planned"] {
            answers.push(client.request(&format!("QUERY {id} {q} {engine}")).unwrap());
        }
        assert!(
            answers.windows(2).all(|w| w[0] == w[1]),
            "engines disagree on {q}: {answers:?}"
        );
        // The bare default engine is the planner.
        assert_eq!(
            client.request(&format!("QUERY {id} {q}")).unwrap(),
            answers[0],
            "default engine drifted on {q}"
        );
    }
    handle.stop();
}

#[test]
fn cache_serves_repeats_and_unload_purges() {
    let sample = write_sample("cache", SAMPLE);
    let (handle, mut client) = start();
    let id = load(&mut client, &sample);
    let cache = handle.plan_cache().clone();

    // First planned query misses and fills; the repeat hits. LABEL shares
    // the entry because it renders the identical response.
    assert!(client.request(&format!("QUERY {id} //book")).unwrap().starts_with("OK 2 "));
    let s = cache.stats();
    assert_eq!((s.hits, s.misses, s.entries), (0, 1, 1), "{s:?}");
    assert!(client.request(&format!("QUERY {id} //book")).unwrap().starts_with("OK 2 "));
    assert!(client.request(&format!("LABEL {id} //book")).unwrap().starts_with("OK 2 "));
    let s = cache.stats();
    assert_eq!((s.hits, s.misses, s.entries), (2, 1, 1), "{s:?}");

    // A different document id never aliases: loading the same file again
    // gets a fresh generation, so its first query is a miss.
    let id2 = load(&mut client, &sample);
    assert_ne!(id, id2);
    assert!(client.request(&format!("QUERY {id2} //book")).unwrap().starts_with("OK 2 "));
    let s = cache.stats();
    assert_eq!((s.misses, s.entries), (2, 2), "{s:?}");

    // UNLOAD drops exactly that document's entries and counts them as
    // invalidations; the survivor still hits.
    assert!(client.request(&format!("UNLOAD {id}")).unwrap().starts_with("OK unloaded"));
    let s = cache.stats();
    assert_eq!((s.invalidations, s.entries), (1, 1), "{s:?}");
    assert!(client.request(&format!("QUERY {id2} //book")).unwrap().starts_with("OK 2 "));
    assert_eq!(cache.stats().hits, 3, "{:?}", cache.stats());
    handle.stop();
}

/// A committed INSERT bumps the document's generation, so the very next
/// repeat of an already-cached query is a *miss* that recomputes against
/// the new tree — the cache can never serve the pre-update answer.
#[test]
fn insert_invalidates_cached_answers_with_a_new_generation() {
    let sample = write_sample("invalidate", SAMPLE);
    let (handle, mut client) = start();
    let id = load(&mut client, &sample);
    let cache = handle.plan_cache().clone();

    // Cache the answer and prove the repeat hits.
    let before = client.request(&format!("QUERY {id} //book")).unwrap();
    assert!(before.starts_with("OK 2 "), "{before}");
    assert_eq!(client.request(&format!("QUERY {id} //book")).unwrap(), before);
    let s = cache.stats();
    assert_eq!((s.hits, s.misses), (1, 1), "{s:?}");

    // Commit an INSERT of a third <book/> under the catalog root.
    let gen_before = handle.catalog().get(id).unwrap().generation;
    let root = {
        let doc = handle.catalog().get(id).unwrap();
        doc.scheme.label_of(doc.doc.root_element().unwrap())
    };
    let resp = client
        .request(&format!(
            "INSERT {id} {} {} {} 0 <book id=\"b3\"/>",
            root.global, root.local, root.is_root
        ))
        .unwrap();
    assert!(resp.starts_with("OK label="), "{resp}");
    let generation: u64 = resp
        .split_whitespace()
        .find_map(|t| t.strip_prefix("generation="))
        .expect("INSERT reports its generation")
        .parse()
        .unwrap();
    assert!(generation > gen_before, "generation must advance: {gen_before} -> {generation}");
    assert_eq!(handle.catalog().get(id).unwrap().generation, generation);

    // Same query again: a miss (new generation keys a new entry) with the
    // post-insert answer; only then does it hit again.
    let after = client.request(&format!("QUERY {id} //book")).unwrap();
    assert!(after.starts_with("OK 3 "), "stale answer served after INSERT: {after}");
    let s = cache.stats();
    assert_eq!((s.hits, s.misses), (1, 2), "{s:?}");
    assert_eq!(client.request(&format!("QUERY {id} //book")).unwrap(), after);
    assert_eq!(cache.stats().hits, 2, "{:?}", cache.stats());
    handle.stop();
}

/// UNLOAD purges the dead document's entries, and a *different* document
/// installed under the reused id (fresh generation) never aliases into
/// the old entry — the first query against it recomputes.
#[test]
fn reused_doc_id_never_serves_a_stale_entry() {
    let sample = write_sample("reuse", SAMPLE);
    let (handle, mut client) = start();
    let id = load(&mut client, &sample);
    let cache = handle.plan_cache().clone();

    let before = client.request(&format!("QUERY {id} //book")).unwrap();
    assert!(before.starts_with("OK 2 "), "{before}");
    assert!(client.request(&format!("UNLOAD {id}")).unwrap().starts_with("OK unloaded"));
    let s = cache.stats();
    assert_eq!((s.invalidations, s.entries), (1, 0), "{s:?}");

    // Install a different document under the same id, the way recovery
    // or an embedder would: fresh bundle, fresh generation.
    let mut swapped = ruid_service::LoadedDoc::build(
        "swapped.xml",
        "<catalog><book/><book/><book/></catalog>",
        3,
        true,
    )
    .unwrap();
    swapped.generation = handle.catalog().next_generation();
    handle.catalog().insert_with_id(id, swapped);

    let after = client.request(&format!("QUERY {id} //book")).unwrap();
    assert!(
        after.starts_with("OK 3 "),
        "stale entry served for reused doc id {id}: {after} (old answer was {before})"
    );
    let s = cache.stats();
    assert_eq!((s.hits, s.misses), (0, 2), "{s:?}");
    handle.stop();
}
