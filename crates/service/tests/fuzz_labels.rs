//! Malformed-input sweep over both protocol front ends: fabricated
//! label triples, truncated verbs, corrupt binary frames, and mangled
//! LOADSTREAM events must all come back as `ERR` (or a closed
//! connection for unparseable frames) — never a worker panic. Every
//! probe is followed by a `PING` so a wedged or crashed server is
//! caught immediately, not at the end of the sweep.
//!
//! The label probes are the regression teeth for the `PARENT` fix: the
//! Fig. 6 parent arithmetic used to `panic!` on labels the numbering
//! never issued (zero indices, unknown areas, impossible root flags),
//! and every one of those bytes is client-controlled.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use ruid_service::wire::{self, WireRequest};
use ruid_service::{Client, Server, ServerConfig, ServerHandle};

fn start() -> (ServerHandle, Client) {
    let dir = std::env::temp_dir().join(format!(
        "ruid-fuzz-labels-{}-{}",
        std::process::id(),
        std::thread::current().name().unwrap_or("t").replace("::", "-")
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let xml = dir.join("doc.xml");
    std::fs::write(&xml, "<a><b><c/><c/></b><b/></a>").unwrap();
    let handle = Server::start(ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let resp = client.request(&format!("LOAD {}", xml.display())).unwrap();
    assert!(resp.starts_with("OK id=1"), "{resp}");
    (handle, client)
}

/// Every engine token the QUERY verb accepts.
const ENGINES: &[&str] = &["tree", "ruid", "indexed", "interval", "ancestry", "planned"];

/// Label triples no numbering ever issues: zero indices, unknown areas,
/// impossible root flags, saturated values.
const BAD_LABELS: &[&str] = &[
    "0 0 false",
    "0 1 true",
    "1 0 false",
    "1 5 true",
    "2 1 false",
    "999 2 false",
    "999 1 false",
    "18446744073709551615 18446744073709551615 true",
    "18446744073709551615 2 false",
];

#[test]
fn fabricated_labels_answer_err_on_every_verb() {
    let (handle, mut client) = start();
    let mut probes = Vec::new();
    for label in BAD_LABELS {
        probes.push(format!("PARENT 1 {label}"));
        probes.push(format!("GET 1 {label}"));
        probes.push(format!("DELETE 1 {label}"));
        probes.push(format!("INSERT 1 {label} 0 <x/>"));
    }
    for line in &probes {
        let resp = client.request(line).unwrap();
        assert!(resp.starts_with("ERR"), "{line} -> {resp}");
        assert_eq!(client.request("PING").unwrap(), "OK pong", "server wedged after {line}");
    }
    handle.stop();
}

#[test]
fn truncated_and_mangled_text_verbs_answer_err() {
    let (handle, mut client) = start();
    let probes: &[&str] = &[
        // Truncated label triples and arities.
        "PARENT",
        "PARENT 1",
        "PARENT 1 2",
        "PARENT 1 2 3",
        "GET 1 1",
        "GET 1 1 2",
        "DELETE 1 1",
        "INSERT 1 1 1 true",
        "INSERT 1 1 1 true 0",
        // Non-numeric and overlong label fields.
        "PARENT 1 x y z",
        "PARENT 1 1 1 maybe",
        "PARENT 1 184467440737095516150 1 false",
        "GET 1 -1 2 false",
        "INSERT 1 1 1 yes 0 <x/>",
        // Engine tokens that do not exist.
        "QUERY 1 //b dewey",
        "QUERY 1 //b INTERVALS",
        // LOADSTREAM: arity, then events the stream parser must refuse.
        "LOADSTREAM",
        "LOADSTREAM feed",
        "LOADSTREAM feed garbage",
        "LOADSTREAM feed 1:2",
        "LOADSTREAM feed a:b:c",
        "LOADSTREAM feed 4:1:a",
        "LOADSTREAM feed 1:6:a 2:5:b 3:7:c",
        "LOADSTREAM feed 1:4:a 5:8:b",
        "LOADSTREAM feed 1:4:=onlytext",
        "LOADSTREAM feed 1:4:a 2:3:9bad",
    ];
    for line in probes {
        let resp = client.request(line).unwrap();
        assert!(resp.starts_with("ERR"), "{line} -> {resp}");
        assert_eq!(client.request("PING").unwrap(), "OK pong", "server wedged after {line}");
    }
    // The document is still intact and queryable on every engine.
    for engine in ENGINES {
        let resp = client.request(&format!("QUERY 1 //c {engine}")).unwrap();
        assert!(resp.starts_with("OK 2"), "{engine}: {resp}");
    }
    handle.stop();
}

/// Sends raw bytes on a fresh connection (first byte 0xB1 routes it to
/// the binary mux), drains whatever comes back until the server closes
/// or stops answering, and returns. The caller then proves the server
/// survived via a text PING.
fn fire_raw(handle: &ServerHandle, bytes: &[u8]) {
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
    // A torn send is fine — the point is the server must not crash.
    let _ = stream.write_all(bytes);
    let _ = stream.flush();
    let mut sink = [0u8; 4096];
    while let Ok(n) = stream.read(&mut sink) {
        if n == 0 {
            break;
        }
    }
}

#[test]
fn corrupt_binary_frames_never_kill_the_server() {
    let (handle, mut client) = start();

    // Valid frames to mutate: every label-carrying verb plus LOADSTREAM,
    // with both new engine codes exercised through Query.
    let mut seeds: Vec<Vec<u8>> = Vec::new();
    let requests = vec![
        WireRequest::Parent { doc: 1, label: ruid_core::Ruid2::new(1, 2, false) },
        WireRequest::Get { doc: 1, label: ruid_core::Ruid2::new(1, 2, false) },
        WireRequest::Query {
            doc: 1,
            engine: ruid_service::proto::Engine::Interval,
            xpath: "//b".into(),
        },
        WireRequest::Query {
            doc: 1,
            engine: ruid_service::proto::Engine::Ancestry,
            xpath: "//b".into(),
        },
        WireRequest::LoadStream { name: "feed".into(), events: "1:4:a 2:3:b".into() },
    ];
    for request in &requests {
        let mut buf = Vec::new();
        wire::encode_request(7, request, &mut buf);
        seeds.push(buf);
    }

    for seed in &seeds {
        // Truncations at the interesting boundaries: mid-header, the
        // exact header edge, mid-id, the verb byte, mid-payload, and one
        // byte short of complete.
        for cut in [1, 3, 5, 9, 13, 14, seed.len() / 2, seed.len() - 1] {
            if cut < seed.len() {
                fire_raw(&handle, &seed[..cut]);
            }
        }
        // Declared length larger than the sent body (the reader must
        // wait, time out, and close — not index out of bounds).
        let mut long = seed.clone();
        long[1..5].copy_from_slice(&(u32::MAX - 7).to_le_bytes());
        fire_raw(&handle, &long);
        // Declared length smaller than the body: the decoder sees a
        // short frame followed by garbage "next frames".
        let mut short = seed.clone();
        short[1..5].copy_from_slice(&9u32.to_le_bytes());
        fire_raw(&handle, &short);
        // Flip the verb byte to an unassigned code.
        let mut bad_verb = seed.clone();
        bad_verb[HEADER_ID_END] = 0x7F;
        fire_raw(&handle, &bad_verb);
        // Saturate every payload byte (oversized engine codes, broken
        // UTF-8 lengths, absurd counts).
        let mut junk = seed.clone();
        for b in junk.iter_mut().skip(HEADER_ID_END + 1) {
            *b = 0xFF;
        }
        fire_raw(&handle, &junk);
        assert_eq!(client.request("PING").unwrap(), "OK pong", "server died mid-sweep");
    }

    // Targeted: LOADSTREAM frame whose name length field claims
    // u32::MAX with almost no bytes behind it.
    let mut frame = Vec::new();
    wire::encode_request(
        9,
        &WireRequest::LoadStream { name: "n".into(), events: "1:2:a".into() },
        &mut frame,
    );
    frame[HEADER_ID_END + 1..HEADER_ID_END + 5].copy_from_slice(&u32::MAX.to_le_bytes());
    fire_raw(&handle, &frame);
    assert_eq!(client.request("PING").unwrap(), "OK pong");

    // The catalog survived the whole sweep intact.
    let resp = client.request("QUERY 1 //c interval").unwrap();
    assert!(resp.starts_with("OK 2"), "{resp}");
    handle.stop();
}

/// Byte offset of the verb byte: magic (1) + length (4) + request id (8).
const HEADER_ID_END: usize = 13;
