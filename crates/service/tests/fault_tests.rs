//! Chaos suite: every injected fault against a live server, asserting a
//! well-formed protocol error (or `BUSY`), unchanged catalog state, and
//! matching metrics counters.
//!
//! Faults come from [`FaultPlan`] — a deterministic request-index → fault
//! schedule that either side of the wire can carry — plus raw-socket
//! abuse for the cases a well-behaved client type cannot produce.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ruid_service::wire::{WireRequest, WireResponse};
use ruid_service::{
    BinaryClient, Client, Fault, FaultPlan, Metrics, Server, ServerConfig, ServerHandle,
};

fn write_sample() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ruid-fault-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sample.xml");
    std::fs::write(
        &path,
        "<catalog><book id=\"b1\"><title>A</title><price>35</price></book>\
         <book id=\"b2\"><title>B</title><price>20</price></book></catalog>",
    )
    .unwrap();
    path
}

fn start_with(config: ServerConfig) -> ServerHandle {
    Server::start(config).unwrap()
}

/// Loads the sample through the wire; returns the document id.
fn load_sample(handle: &ServerHandle) -> u64 {
    let mut client = Client::connect(handle.addr()).unwrap();
    let resp = client.request(&format!("LOAD {}", write_sample().display())).unwrap();
    assert!(resp.starts_with("OK id="), "{resp}");
    resp.split_whitespace().find_map(|t| t.strip_prefix("id=")).unwrap().parse().unwrap()
}

/// Polls `probe` until it returns true or ~5 s elapse (worker threads
/// process disconnects asynchronously, so counters lag a moment).
fn wait_for(mut probe: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if probe() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    false
}

fn metrics_of(handle: &ServerHandle) -> Arc<Metrics> {
    Arc::clone(handle.metrics())
}

#[test]
fn oversized_frame_is_rejected_and_connection_survives() {
    let config = ServerConfig { max_line_bytes: 256, ..ServerConfig::default() };
    let handle = start_with(config);
    let id = load_sample(&handle);
    let mut client = Client::connect(handle.addr()).unwrap();

    let giant = format!("LOAD {}", "A".repeat(10_000));
    let resp = client.request(&giant).unwrap();
    assert_eq!(resp, "ERR line too long (limit 256 bytes)");

    // Same connection keeps serving: the framing layer resynchronized.
    assert_eq!(client.request("PING").unwrap(), "OK pong");
    let resp = client.request(&format!("STATS {id}")).unwrap();
    assert!(resp.contains("nodes=11"), "catalog state disturbed: {resp}");

    let metrics = metrics_of(&handle);
    assert_eq!(metrics.oversized(), 1);
    assert_eq!(handle.catalog().len(), 1, "no phantom documents");
    handle.stop();
}

#[test]
fn empty_and_whitespace_lines_get_err_replies() {
    // Regression: empty/whitespace-only lines used to be silently
    // swallowed, desynchronizing pipelined clients. They must answer
    // `ERR` without closing the connection.
    let handle = start_with(ServerConfig::default());
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream.write_all(b"\n   \nPING\n").unwrap();
    stream.flush().unwrap();
    let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
    let mut lines = Vec::new();
    for _ in 0..3 {
        let mut line = String::new();
        std::io::BufRead::read_line(&mut reader, &mut line).unwrap();
        lines.push(line.trim_end().to_owned());
    }
    assert_eq!(lines[0], "ERR empty request");
    assert_eq!(lines[1], "ERR empty request");
    assert_eq!(lines[2], "OK pong");
    handle.stop();
}

#[test]
fn torn_client_write_leaves_state_consistent() {
    let handle = start_with(ServerConfig::default());
    let id = load_sample(&handle);
    assert_eq!(handle.catalog().len(), 1);

    let plan = Arc::new(FaultPlan::new().inject(0, Fault::TornWrite { bytes: 5 }));
    let mut faulty = Client::connect_with_faults(handle.addr(), plan).unwrap();
    let err = faulty.request(&format!("UNLOAD {id}")).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::ConnectionAborted);

    let metrics = metrics_of(&handle);
    assert!(wait_for(|| metrics.torn() == 1), "torn counter never ticked");
    // The half-written UNLOAD must not have executed.
    assert_eq!(handle.catalog().len(), 1, "torn request mutated the catalog");
    let mut client = Client::connect(handle.addr()).unwrap();
    let resp = client.request("LIST").unwrap();
    assert!(resp.starts_with("OK 1 "), "{resp}");
    handle.stop();
}

#[test]
fn slow_loris_write_trips_read_deadline() {
    let config = ServerConfig { read_timeout_ms: 200, ..ServerConfig::default() };
    let handle = start_with(config);
    let plan = Arc::new(FaultPlan::new().inject(0, Fault::DelayMs { ms: 1_200 }));
    let mut faulty = Client::connect_with_faults(handle.addr(), plan).unwrap();
    faulty.set_timeout(Some(Duration::from_secs(5))).unwrap();

    // The server gives up mid-line; depending on timing the client either
    // reads the deadline error or finds the connection already severed.
    match faulty.request("PING") {
        Ok(resp) => assert!(
            resp.starts_with("ERR read deadline exceeded"),
            "unexpected response: {resp}"
        ),
        Err(e) => assert!(
            matches!(
                e.kind(),
                std::io::ErrorKind::UnexpectedEof
                    | std::io::ErrorKind::BrokenPipe
                    | std::io::ErrorKind::ConnectionReset
            ),
            "unexpected error: {e}"
        ),
    }
    let metrics = metrics_of(&handle);
    assert!(wait_for(|| metrics.deadline_read() == 1), "deadline_read never ticked");
    // Fresh connections are unaffected.
    let mut client = Client::connect(handle.addr()).unwrap();
    assert_eq!(client.request("PING").unwrap(), "OK pong");
    handle.stop();
}

#[test]
fn early_eof_mid_session_is_harmless() {
    let handle = start_with(ServerConfig::default());
    let id = load_sample(&handle);
    let plan = Arc::new(FaultPlan::new().inject(1, Fault::EarlyEof));
    let mut faulty = Client::connect_with_faults(handle.addr(), plan).unwrap();
    assert_eq!(faulty.request("PING").unwrap(), "OK pong");
    let err = faulty.request(&format!("UNLOAD {id}")).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::ConnectionAborted);

    // A clean EOF between requests is not a torn request.
    let metrics = metrics_of(&handle);
    std::thread::sleep(Duration::from_millis(150));
    assert_eq!(metrics.torn(), 0);
    assert_eq!(handle.catalog().len(), 1);
    let mut client = Client::connect(handle.addr()).unwrap();
    assert!(client.request("LIST").unwrap().starts_with("OK 1 "));
    handle.stop();
}

#[test]
fn queue_full_sheds_with_busy() {
    // One worker, one queue slot: the third simultaneous connection must
    // be answered BUSY by the acceptor, not parked.
    let config = ServerConfig { threads: 1, queue_cap: 1, ..ServerConfig::default() };
    let handle = start_with(config);

    // Connection A occupies the single worker (round-trip proves it).
    let mut a = Client::connect(handle.addr()).unwrap();
    assert_eq!(a.request("PING").unwrap(), "OK pong");
    // Connection B fills the one queue slot.
    let b = TcpStream::connect(handle.addr()).unwrap();
    let metrics = metrics_of(&handle);
    // Wait until the acceptor actually queued B (connections counter).
    assert!(wait_for(|| metrics.shed() > 0 || {
        // Probe with one more connection; it is shed once B is queued.
        let mut c = TcpStream::connect(handle.addr()).unwrap();
        c.set_read_timeout(Some(Duration::from_millis(500))).unwrap();
        let mut response = String::new();
        matches!(c.read_to_string(&mut response), Ok(_) if response.starts_with("BUSY"))
    }));
    assert!(metrics.shed() >= 1, "shed counter must account the refusal");

    // A still works; B gets served once A's connection closes.
    assert_eq!(a.request("PING").unwrap(), "OK pong");
    drop(a);
    let mut b_reader = std::io::BufReader::new(b.try_clone().unwrap());
    let mut bw = b;
    bw.write_all(b"PING\n").unwrap();
    bw.flush().unwrap();
    let mut line = String::new();
    std::io::BufRead::read_line(&mut b_reader, &mut line).unwrap();
    assert_eq!(line.trim_end(), "OK pong", "queued connection must be served");
    handle.stop();
}

#[test]
fn forced_busy_at_chosen_request_index() {
    let plan = Arc::new(FaultPlan::new().inject(2, Fault::ForceBusy));
    let config = ServerConfig { fault_plan: Some(plan), ..ServerConfig::default() };
    let handle = start_with(config);
    let mut client = Client::connect(handle.addr()).unwrap();
    assert_eq!(client.request("PING").unwrap(), "OK pong");
    assert_eq!(client.request("PING").unwrap(), "OK pong");
    assert_eq!(client.request("PING").unwrap(), "BUSY", "request index 2 is shed");
    assert_eq!(client.request("PING").unwrap(), "OK pong", "BUSY is not sticky");

    let metrics = metrics_of(&handle);
    assert_eq!(metrics.shed(), 1);
    // The shed request was never executed, so only 3 PINGs are metered.
    assert_eq!(metrics.count_of(ruid_service::Command::Ping), 3);
    handle.stop();
}

#[test]
fn server_torn_write_truncates_response() {
    let plan = Arc::new(FaultPlan::new().inject(0, Fault::TornWrite { bytes: 3 }));
    let config = ServerConfig { fault_plan: Some(plan), ..ServerConfig::default() };
    let handle = start_with(config);

    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream.write_all(b"PING\n").unwrap();
    stream.flush().unwrap();
    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes).unwrap();
    assert_eq!(bytes, b"OK ", "exactly 3 bytes, then EOF");

    // The server itself is healthy; only that one response was torn.
    let mut client = Client::connect(handle.addr()).unwrap();
    assert_eq!(client.request("PING").unwrap(), "OK pong");
    handle.stop();
}

#[test]
fn stall_trips_request_deadline() {
    let plan = Arc::new(FaultPlan::new().inject(1, Fault::StallHandler { ms: 400 }));
    let config = ServerConfig {
        request_timeout_ms: 50,
        fault_plan: Some(plan),
        ..ServerConfig::default()
    };
    let handle = start_with(config);
    let mut client = Client::connect(handle.addr()).unwrap();
    assert_eq!(client.request("PING").unwrap(), "OK pong");
    assert_eq!(
        client.request("PING").unwrap(),
        "ERR request deadline exceeded (50 ms limit)"
    );
    assert_eq!(client.request("PING").unwrap(), "OK pong", "connection survives");

    let metrics = metrics_of(&handle);
    assert_eq!(metrics.deadline_request(), 1);
    handle.stop();
}

#[test]
fn delayed_server_response_hits_client_timeout() {
    let plan = Arc::new(FaultPlan::new().inject(0, Fault::DelayMs { ms: 600 }));
    let config = ServerConfig { fault_plan: Some(plan), ..ServerConfig::default() };
    let handle = start_with(config);
    let mut client = Client::connect(handle.addr()).unwrap();
    client.set_timeout(Some(Duration::from_millis(100))).unwrap();
    let err = client.request("PING").unwrap_err();
    assert!(
        matches!(
            err.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ),
        "expected a read timeout, got {err}"
    );
    // The fault index was consumed; the next request is served normally.
    let mut fresh = Client::connect(handle.addr()).unwrap();
    assert_eq!(fresh.request("PING").unwrap(), "OK pong");
    handle.stop();
}

#[test]
fn torn_binary_frame_ticks_torn_counter() {
    // The binary front end must account a half-written frame followed by
    // EOF exactly like the text framer accounts a newline-less line.
    let handle = start_with(ServerConfig::default());
    let id = load_sample(&handle);

    let plan = Arc::new(FaultPlan::new().inject(0, Fault::TornWrite { bytes: 8 }));
    let mut faulty = BinaryClient::connect_with_faults(handle.addr(), plan).unwrap();
    let err = faulty.send(&WireRequest::Ping).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::ConnectionAborted);

    let metrics = metrics_of(&handle);
    assert!(wait_for(|| metrics.torn() == 1), "torn counter never ticked");
    assert_eq!(handle.catalog().len(), 1, "torn frame mutated the catalog");
    // Both front ends keep serving.
    let mut binary = BinaryClient::connect(handle.addr()).unwrap();
    assert_eq!(binary.request("PING").unwrap(), "OK pong");
    let mut text = Client::connect(handle.addr()).unwrap();
    assert!(text.request(&format!("STATS {id}")).unwrap().contains("nodes=11"));
    handle.stop();
}

#[test]
fn oversized_binary_frame_is_rejected_from_the_header() {
    // `max_line_bytes` caps binary frame bodies too. The length field is
    // untrusted, so the server must reject from the header alone (no
    // allocation), answer an id-0 error frame, and close.
    let config = ServerConfig { max_line_bytes: 256, ..ServerConfig::default() };
    let handle = start_with(config);

    let plan =
        Arc::new(FaultPlan::new().inject(0, Fault::OversizedFrame { declared: 10_000_000 }));
    let mut faulty = BinaryClient::connect_with_faults(handle.addr(), plan).unwrap();
    faulty.set_timeout(Some(Duration::from_secs(5))).unwrap();
    faulty.send(&WireRequest::Ping).unwrap();

    let frame = faulty.recv().unwrap();
    assert_eq!(frame.id, 0, "connection-level errors carry id 0");
    assert_eq!(
        frame.response,
        WireResponse::Line(
            "ERR frame too large (10000000 bytes declared, limit 256)".to_owned()
        )
    );
    let err = faulty.recv().unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof, "connection must close");

    let metrics = metrics_of(&handle);
    assert!(wait_for(|| metrics.oversized() == 1), "oversized counter never ticked");
    // Fresh connections are unaffected.
    let mut binary = BinaryClient::connect(handle.addr()).unwrap();
    assert_eq!(binary.request("PING").unwrap(), "OK pong");
    handle.stop();
}

#[test]
fn slow_binary_frame_trips_read_deadline() {
    // A frame, like a line, must complete within `read_timeout_ms` of its
    // first byte.
    let config = ServerConfig { read_timeout_ms: 200, ..ServerConfig::default() };
    let handle = start_with(config);

    let plan = Arc::new(FaultPlan::new().inject(0, Fault::DelayMs { ms: 1_200 }));
    let mut faulty = BinaryClient::connect_with_faults(handle.addr(), plan).unwrap();
    faulty.set_timeout(Some(Duration::from_secs(5))).unwrap();

    // The second half of the frame lands after the server gave up; the
    // client either reads the deadline error frame or finds the
    // connection severed, depending on timing.
    let outcome = faulty.send(&WireRequest::Ping).and_then(|_| faulty.recv());
    match outcome {
        Ok(frame) => {
            assert_eq!(frame.id, 0);
            assert_eq!(
                frame.response,
                WireResponse::Line(
                    "ERR read deadline exceeded (200 ms to complete a frame)".to_owned()
                )
            );
        }
        Err(e) => assert!(
            matches!(
                e.kind(),
                std::io::ErrorKind::UnexpectedEof
                    | std::io::ErrorKind::BrokenPipe
                    | std::io::ErrorKind::ConnectionReset
            ),
            "unexpected error: {e}"
        ),
    }
    let metrics = metrics_of(&handle);
    assert!(wait_for(|| metrics.deadline_read() == 1), "deadline_read never ticked");
    let mut binary = BinaryClient::connect(handle.addr()).unwrap();
    assert_eq!(binary.request("PING").unwrap(), "OK pong");
    handle.stop();
}

/// A seeded storm of client-side faults: whatever the plan throws at the
/// server, the catalog must end exactly where it started and the torn
/// counter must equal the number of torn writes injected.
#[test]
fn randomized_fault_storm_keeps_catalog_consistent() {
    let handle = start_with(ServerConfig::default());
    let id = load_sample(&handle);
    let baseline = {
        let mut client = Client::connect(handle.addr()).unwrap();
        (client.request("LIST").unwrap(), client.request(&format!("STATS {id}")).unwrap())
    };

    const REQUESTS: u64 = 120;
    let menu = [
        Fault::TornWrite { bytes: 4 },
        Fault::EarlyEof,
        Fault::DelayMs { ms: 5 }, // well under the read deadline: must succeed
    ];
    let plan = FaultPlan::randomized(0xFA_17, REQUESTS, 0.35, &menu);
    assert!(!plan.is_empty());
    let torn_injected =
        plan.iter().filter(|(_, f)| matches!(f, Fault::TornWrite { .. })).count() as u64;

    let mut healthy = Client::connect(handle.addr()).unwrap();
    for index in 0..REQUESTS {
        // Read-only traffic: every request either succeeds or is killed
        // by its fault; none may mutate the catalog. (The STATS/LIST mix
        // keeps several command paths hot.)
        let request = match index % 3 {
            0 => "PING".to_owned(),
            1 => "LIST".to_owned(),
            _ => format!("STATS {id}"),
        };
        match plan.fault_at(index).cloned() {
            None => {
                let resp = healthy.request(&request).unwrap();
                assert!(resp.starts_with("OK"), "{request}: {resp}");
            }
            Some(fault) => {
                let one_shot = Arc::new(FaultPlan::new().inject(0, fault.clone()));
                let mut faulty =
                    Client::connect_with_faults(handle.addr(), one_shot).unwrap();
                match (fault, faulty.request(&request)) {
                    (Fault::DelayMs { .. }, outcome) => {
                        let resp = outcome.unwrap();
                        assert!(resp.starts_with("OK"), "{request}: {resp}");
                    }
                    (Fault::TornWrite { .. } | Fault::EarlyEof, outcome) => {
                        assert!(outcome.is_err(), "{request} should have been severed");
                    }
                    (fault, _) => panic!("unexpected fault in menu: {fault:?}"),
                }
            }
        }
    }

    let metrics = metrics_of(&handle);
    assert!(
        wait_for(|| metrics.torn() == torn_injected),
        "torn counter {} != injected torn writes {}",
        metrics.torn(),
        torn_injected
    );
    assert_eq!(metrics.shed(), 0);
    assert_eq!(metrics.deadline_read(), 0);
    assert_eq!(metrics.deadline_request(), 0);
    assert_eq!(metrics.oversized(), 0);

    // The catalog is byte-for-byte where it started.
    assert_eq!(handle.catalog().len(), 1);
    let mut client = Client::connect(handle.addr()).unwrap();
    assert_eq!(client.request("LIST").unwrap(), baseline.0);
    assert_eq!(client.request(&format!("STATS {id}")).unwrap(), baseline.1);
    handle.stop();
}
