//! Concurrency correctness: many clients hammer one server with mixed
//! structural requests, and every response must be byte-identical to an
//! oracle computed single-threaded from the scheme and evaluator directly.
//!
//! This is the test the sharded-catalog design has to pass: reads take
//! shared locks only to clone an `Arc`, and `rparent`/axis evaluation is
//! pure arithmetic over the label and table K, so any interleaving of
//! readers must produce exactly the sequential answers.

use std::sync::Arc;
use std::thread;

use ruid_core::{PartitionConfig, Ruid2, Ruid2Scheme};
use ruid_service::proto::{escape_line, fmt_label};
use ruid_service::{Client, Server, ServerConfig};
use schemes::NumberingScheme;
use xmldom::Document;
use xmlgen::{xmark, SplitMix64};
use xmlstore::record::StoredKind;
use xmlstore::{MemPager, XmlStore};
use xpath::{Evaluator, NameIndex, NameIndexed, RuidAxes, TreeAxes};

const THREADS: usize = 8;
const REQUESTS_PER_THREAD: usize = 80; // 640 total, comfortably over 500

const XPATHS: [&str; 6] = [
    "//item",
    "//person/name",
    "//item/incategory",
    "//open_auction/bidder",
    "//category/name",
    "//regions//quantity",
];
const ENGINES: [&str; 3] = ["tree", "ruid", "indexed"];

/// The single-threaded oracle: the same bundle the server builds, driven
/// directly (no sockets, no pool, no catalog).
struct Oracle {
    doc: Document,
    scheme: Ruid2Scheme,
    index: NameIndex,
    store: XmlStore<MemPager>,
}

impl Oracle {
    fn build(text: &str, depth: usize) -> Oracle {
        let doc = Document::parse(text).unwrap();
        let scheme = Ruid2Scheme::try_build(&doc, &PartitionConfig::by_depth(depth)).unwrap();
        let index = NameIndex::build(&doc);
        let mut store = XmlStore::in_memory();
        store.load_document(&doc, &scheme);
        Oracle { doc, scheme, index, store }
    }

    fn parent(&self, label: &Ruid2) -> String {
        match self.scheme.rparent(label) {
            Some(parent) => format!("OK {}", fmt_label(&parent)),
            None => "OK none".into(),
        }
    }

    fn query(&self, xpath: &str, engine: &str) -> String {
        let hits = match engine {
            "tree" => Evaluator::new(&self.doc, TreeAxes::new(&self.doc)).query(xpath),
            "ruid" => Evaluator::new(&self.doc, RuidAxes::new(&self.scheme)).query(xpath),
            "indexed" => Evaluator::new(
                &self.doc,
                NameIndexed::new(RuidAxes::new(&self.scheme), &self.doc, &self.index),
            )
            .query(xpath),
            other => panic!("unknown engine {other}"),
        }
        .unwrap();
        let mut out = format!("OK {}", hits.len());
        for node in hits {
            out.push(' ');
            out.push_str(&fmt_label(&self.scheme.label_of(node)));
        }
        out
    }

    fn scan(&self, global: u64) -> String {
        let rows = self.store.scan_area(global);
        let mut out = format!("OK {}", rows.len());
        for row in rows {
            let kind = match row.kind {
                StoredKind::Element => "elem",
                StoredKind::Text => "text",
                StoredKind::Comment => "comment",
                StoredKind::ProcessingInstruction => "pi",
            };
            out.push(' ');
            out.push_str(&fmt_label(&row.label));
            out.push('#');
            out.push_str(kind);
            out.push('#');
            out.push_str(&escape_line(&row.name.replace(' ', "_")));
        }
        out
    }
}

/// Pulls `NAME=count/errors/p50/p95/p99` out of a METRICS response line.
fn metric(resp: &str, name: &str) -> (u64, u64, u64) {
    let token = resp
        .split_whitespace()
        .find_map(|t| t.strip_prefix(&format!("{name}=")))
        .unwrap_or_else(|| panic!("no {name} in {resp}"));
    let fields: Vec<u64> = token.split('/').map(|f| f.parse().unwrap()).collect();
    (fields[0], fields[1], fields[2]) // count, errors, p50 ns
}

#[test]
fn concurrent_clients_match_the_sequential_oracle() {
    // An XMark-style document of a few thousand nodes.
    let generated = xmark::generate(&xmark::XmarkConfig::scaled_to(3000, 7));
    let text = generated.to_xml_string();
    let dir = std::env::temp_dir().join(format!("ruid-service-conc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("xmark.xml");
    std::fs::write(&path, &text).unwrap();

    let depth = ServerConfig::default().depth;
    let oracle = Oracle::build(&text, depth);
    let root = oracle.doc.root_element().unwrap();
    let labels: Vec<Ruid2> =
        oracle.doc.descendants(root).map(|n| oracle.scheme.label_of(n)).collect();
    let areas: Vec<u64> = oracle.scheme.ktable().rows().iter().map(|r| r.global).collect();
    assert!(labels.len() >= 1000, "document too small: {} nodes", labels.len());
    assert!(areas.len() >= 2, "want multiple areas, got {}", areas.len());

    let handle = Server::start(ServerConfig::default()).unwrap();

    // Load through a short-lived connection (its worker frees up before the
    // eight query threads claim all pool slots).
    let id: u64 = {
        let mut loader = Client::connect(handle.addr()).unwrap();
        let resp = loader.request(&format!("LOAD {}", path.display())).unwrap();
        assert!(resp.starts_with("OK id="), "{resp}");
        resp.split_whitespace()
            .find_map(|t| t.strip_prefix("id="))
            .unwrap()
            .parse()
            .unwrap()
    };

    // Precompute (request, expected) pairs single-threaded.
    let mut rng = SplitMix64::seed_from_u64(0xC0FFEE);
    let mut pairs: Vec<(String, String)> = Vec::new();
    let (mut n_parent, mut n_query, mut n_scan) = (0u64, 0u64, 0u64);
    for _ in 0..THREADS * REQUESTS_PER_THREAD {
        match rng.gen_range(0..3u32) {
            0 => {
                let label = labels[rng.gen_range(0..labels.len())];
                let request = format!(
                    "PARENT {id} {} {} {}",
                    label.global, label.local, label.is_root
                );
                pairs.push((request, oracle.parent(&label)));
                n_parent += 1;
            }
            1 => {
                let xpath = XPATHS[rng.gen_range(0..XPATHS.len())];
                let engine = ENGINES[rng.gen_range(0..ENGINES.len())];
                let request = format!("QUERY {id} {xpath} {engine}");
                pairs.push((request, oracle.query(xpath, engine)));
                n_query += 1;
            }
            _ => {
                let global = areas[rng.gen_range(0..areas.len())];
                let request = format!("SCAN {id} {global}");
                pairs.push((request, oracle.scan(global)));
                n_scan += 1;
            }
        }
    }

    // Hammer the server from eight connections at once; every response must
    // be byte-identical to the oracle's answer.
    let pairs = Arc::new(pairs);
    let addr = handle.addr();
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let pairs = Arc::clone(&pairs);
            thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let slice = &pairs[t * REQUESTS_PER_THREAD..(t + 1) * REQUESTS_PER_THREAD];
                for (request, expected) in slice {
                    let response = client.request(request).unwrap();
                    assert_eq!(&response, expected, "request {request:?} diverged");
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().unwrap();
    }

    // The metrics must account for exactly the traffic issued: one LOAD plus
    // the mixed requests, all error-free, with live latency histograms.
    let mut prober = Client::connect(addr).unwrap();
    let resp = prober.request("METRICS").unwrap();
    assert!(resp.contains("errors=0"), "{resp}");
    let (load_count, load_errors, load_p50) = metric(&resp, "LOAD");
    assert_eq!((load_count, load_errors), (1, 0), "{resp}");
    assert!(load_p50 > 0, "{resp}");
    let mut issued = 0u64;
    for (name, expected_count) in
        [("PARENT", n_parent), ("QUERY", n_query), ("SCAN", n_scan)]
    {
        let (count, errors, p50) = metric(&resp, name);
        assert_eq!(count, expected_count, "{name}: {resp}");
        assert_eq!(errors, 0, "{name}: {resp}");
        assert!(p50 > 0, "{name}: histogram empty in {resp}");
        issued += count;
    }
    assert_eq!(issued, (THREADS * REQUESTS_PER_THREAD) as u64, "{resp}");

    handle.stop();
}
