//! WAL-shipping replication end to end: follower bootstrap + tail,
//! read-only serving, forged-stream refusal, clean detach, and the
//! kill-the-leader failover sweep.
//!
//! The consistency claim under test is the paper's label-determinism:
//! rUID labels and table K are pure functions of the mutation history,
//! so a follower that replays the shipped WAL prefix must answer every
//! query **byte-identically** to a single-node server that executed the
//! same prefix. The sweep kills the leader at varying points, promotes
//! the follower, and asserts the promoted replica's answers over the
//! differential corpus equal one of the prefix oracles — never a hybrid
//! state that no single-node execution could have produced.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use ruid_core::Ruid2;
use ruid_service::{Client, FsyncPolicy, Server, ServerConfig, ServerHandle};
use schemes::NumberingScheme;

/// The planner differential corpus (`tests/planner_differential.rs`):
/// every axis/predicate family over a/b/c trees.
const CORPUS: &[&str] = &[
    "/a",
    "/a/b",
    "/a/b/c",
    "//b",
    "//c",
    "//b/c",
    "//b//a",
    "/a//c",
    "//*",
    "/a/*",
    "//b/*",
    "/a/b[c]",
    "//b[c]/c",
    "//b[c]//a",
    "//b[not(c)]",
    "//b[c][a]",
    "//b[1]",
    "//b[last()]",
    "//b[c][1]",
    "//b/c/..",
    "//c/parent::b",
    "//b[count(c) >= 1]",
    "//a[b or c]",
];

/// A small a/b/c document: fanout 3, three levels below the root.
fn corpus_xml() -> String {
    fn node(depth: usize, out: &mut String) {
        let tag = ["a", "b", "c"][depth % 3];
        if depth == 3 {
            let _ = write!(out, "<{tag}/>");
            return;
        }
        let _ = write!(out, "<{tag}>");
        for _ in 0..3 {
            node(depth + 1, out);
        }
        let _ = write!(out, "</{tag}>");
    }
    let mut xml = String::new();
    node(0, &mut xml);
    xml
}

fn scratch(name: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("ruid-repl-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start_leader(data_dir: &std::path::Path) -> (ServerHandle, Client) {
    let config = ServerConfig {
        data_dir: Some(data_dir.to_path_buf()),
        fsync: FsyncPolicy::Always,
        ..ServerConfig::default()
    };
    let handle = Server::start(config).unwrap();
    let client = Client::connect(handle.addr()).unwrap();
    (handle, client)
}

fn start_follower(
    leader_addr: std::net::SocketAddr,
    data_dir: Option<&std::path::Path>,
    poll_ms: u64,
) -> (ServerHandle, Client) {
    let config = ServerConfig {
        data_dir: data_dir.map(std::path::Path::to_path_buf),
        fsync: FsyncPolicy::Always,
        follow: Some(leader_addr.to_string()),
        repl_poll_ms: poll_ms,
        ..ServerConfig::default()
    };
    let handle = Server::start(config).unwrap();
    let client = Client::connect(handle.addr()).unwrap();
    (handle, client)
}

/// The answer vector one server gives over the corpus for both document
/// ids — including `ERR no document` for ids the prefix never loaded, so
/// two vectors match only when the catalogs agree exactly.
fn answer_vector(client: &mut Client) -> Vec<String> {
    let mut answers = Vec::new();
    for doc in [1u64, 2] {
        for xpath in CORPUS {
            answers.push(client.request(&format!("QUERY {doc} {xpath}")).unwrap());
        }
    }
    answers
}

fn wait_until(what: &str, timeout: Duration, mut pred: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while !pred() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// First element named `name` in `doc`, as its current rUID label.
fn label_of_first(handle: &ServerHandle, doc: u64, name: &str) -> Ruid2 {
    let loaded = handle.catalog().get(doc).unwrap();
    let root = loaded.doc.root_element().unwrap();
    let node = std::iter::once(root)
        .chain(loaded.doc.descendants(root))
        .find(|&n| loaded.doc.tag_name(n) == Some(name))
        .unwrap_or_else(|| panic!("no <{name}> element in document {doc}"));
    loaded.scheme.label_of(node)
}

/// Builds the deterministic write-op script by running it once against a
/// throwaway single-node server (labels are functions of the mutation
/// history, so the recorded lines replay identically everywhere).
fn record_ops(corpus_path: &str, site_path: &str) -> Vec<String> {
    let handle = Server::start(ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let mut ops: Vec<String> = Vec::new();
    let apply = |handle: &ServerHandle, ops: &mut Vec<String>, line: String| {
        let resp = Client::connect(handle.addr()).unwrap().request(&line).unwrap();
        assert!(resp.starts_with("OK"), "recorder rejected {line}: {resp}");
        ops.push(line);
    };
    apply(&handle, &mut ops, format!("LOAD {corpus_path}"));
    let root = label_of_first(&handle, 1, "a");
    apply(
        &handle,
        &mut ops,
        format!(
            "INSERT 1 {} {} {} 0 <b/>",
            root.global, root.local, root.is_root
        ),
    );
    let victim = label_of_first(&handle, 1, "c");
    apply(
        &handle,
        &mut ops,
        format!("DELETE 1 {} {} {}", victim.global, victim.local, victim.is_root),
    );
    apply(&handle, &mut ops, format!("LOAD {site_path}"));
    let site_root = label_of_first(&handle, 2, "a");
    apply(
        &handle,
        &mut ops,
        format!(
            "INSERT 2 {} {} {} 1 <y k=\"fo\"/>",
            site_root.global, site_root.local, site_root.is_root
        ),
    );
    apply(&handle, &mut ops, "RELABEL 1".to_string());
    let _ = client.request("SHUTDOWN");
    handle.join();
    ops
}

/// Answer vectors of a fresh single-node server after each op prefix:
/// `oracles[p]` is the state after `ops[..p]`.
fn prefix_oracles(ops: &[String]) -> Vec<Vec<String>> {
    let mut oracles = Vec::with_capacity(ops.len() + 1);
    for p in 0..=ops.len() {
        let handle = Server::start(ServerConfig::default()).unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        for line in &ops[..p] {
            let resp = client.request(line).unwrap();
            assert!(resp.starts_with("OK"), "oracle prefix {p} rejected {line}: {resp}");
        }
        oracles.push(answer_vector(&mut client));
        handle.stop();
    }
    oracles
}

fn metrics_field(metrics: &str, key: &str) -> Option<String> {
    metrics
        .split_whitespace()
        .find_map(|t| t.strip_prefix(&format!("{key}=")).map(str::to_owned))
}

#[test]
fn follower_serves_reads_and_rejects_writes() {
    let dir = scratch("read-replica");
    let corpus = dir.join("corpus.xml");
    std::fs::write(&corpus, corpus_xml()).unwrap();

    let (leader, mut lc) = start_leader(&dir.join("leader"));
    let resp = lc.request(&format!("LOAD {}", corpus.display())).unwrap();
    assert!(resp.starts_with("OK id=1"), "{resp}");
    let root = label_of_first(&leader, 1, "a");
    let insert =
        format!("INSERT 1 {} {} {} 0 <b/>", root.global, root.local, root.is_root);
    assert!(lc.request(&insert).unwrap().starts_with("OK"), "{insert}");

    let (follower, mut fc) = start_follower(leader.addr(), None, 5);
    let want = answer_vector(&mut lc);
    wait_until("follower catch-up", Duration::from_secs(10), || {
        answer_vector(&mut Client::connect(follower.addr()).unwrap()) == want
    });

    // Reads are served locally and byte-identically; writes bounce with
    // a redirect to the leader.
    assert_eq!(answer_vector(&mut fc), want);
    for write in [
        format!("LOAD {}", corpus.display()),
        insert.clone(),
        "UNLOAD 1".to_string(),
        "RELABEL 1".to_string(),
    ] {
        let resp = fc.request(&write).unwrap();
        assert!(resp.starts_with("ERR read-only replica"), "{write} -> {resp}");
        assert!(resp.contains(&leader.addr().to_string()), "redirect names the leader: {resp}");
    }

    // Role and lag are visible on both sides, and the leader sees the
    // attached follower through its acks.
    let fm = fc.request("METRICS").unwrap();
    assert_eq!(metrics_field(&fm, "repl_role").as_deref(), Some("follower"), "{fm}");
    assert_eq!(metrics_field(&fm, "repl_lag_records").as_deref(), Some("0"), "{fm}");
    assert!(metrics_field(&fm, "repl_applied").unwrap().parse::<u64>().unwrap() >= 2, "{fm}");
    assert_eq!(metrics_field(&fm, "repl_bootstraps").as_deref(), Some("1"), "{fm}");
    let lm = lc.request("METRICS").unwrap();
    assert_eq!(metrics_field(&lm, "repl_role").as_deref(), Some("leader"), "{lm}");
    wait_until("leader sees the follower", Duration::from_secs(5), || {
        let m = Client::connect(leader.addr()).unwrap().request("METRICS").unwrap();
        metrics_field(&m, "repl_followers").as_deref() == Some("1")
    });

    // The Prometheus exposition carries the role and lag gauges.
    let prom = fc.request("METRICS prom").unwrap();
    assert!(prom.contains("ruid_repl_role{role=\"follower\"} 1"), "{prom}");
    assert!(prom.contains("ruid_repl_lag_seconds"), "{prom}");

    // Satellite: a follower SHUTDOWN detaches cleanly — the bye-ack
    // empties the leader's follower map instead of leaving the leader's
    // connection to time out.
    assert!(fc.request("SHUTDOWN").unwrap().starts_with("OK bye"));
    follower.join();
    wait_until("leader forgets the follower", Duration::from_secs(5), || {
        let m = Client::connect(leader.addr()).unwrap().request("METRICS").unwrap();
        metrics_field(&m, "repl_followers").as_deref() == Some("0")
    });
    leader.stop();
}

/// The tentpole sweep: kill the leader at varying points, promote the
/// follower, and demand the promoted replica answers the whole corpus
/// exactly like **some** single-node prefix of the op script — caught-up
/// kills must land on the full prefix, mid-stream kills on any prefix,
/// and nothing else.
#[test]
fn kill_the_leader_failover_sweep() {
    let dir = scratch("failover-sweep");
    let corpus = dir.join("corpus.xml");
    let site = dir.join("site.xml");
    std::fs::write(&corpus, corpus_xml()).unwrap();
    std::fs::write(&site, "<a><b>x</b><c/></a>").unwrap();

    let ops = record_ops(&corpus.display().to_string(), &site.display().to_string());
    assert_eq!(ops.len(), 6, "{ops:?}");
    let oracles = prefix_oracles(&ops);

    // Caught-up kills after k ops: the promoted follower must equal
    // exactly the k-prefix oracle.
    for (case, k) in [2usize, 4, 6].into_iter().enumerate() {
        let (leader, mut lc) = start_leader(&dir.join(format!("leader-{case}")));
        let follower_dir = dir.join(format!("follower-{case}"));
        let (follower, mut fc) = start_follower(leader.addr(), Some(&follower_dir), 5);
        for line in &ops[..k] {
            assert!(lc.request(line).unwrap().starts_with("OK"), "{line}");
        }
        wait_until("follower catch-up", Duration::from_secs(10), || {
            answer_vector(&mut Client::connect(follower.addr()).unwrap()) == oracles[k]
        });

        // Kill the leader abruptly: no SHUTDOWN, no final snapshot.
        leader.stop();

        let resp = fc.request("PROMOTE").unwrap();
        assert_eq!(resp, "OK role=leader promoted=true", "case {case}");
        assert_eq!(
            answer_vector(&mut fc),
            oracles[k],
            "case {case}: promoted follower drifted from the {k}-prefix oracle"
        );
        let m = fc.request("METRICS").unwrap();
        assert_eq!(metrics_field(&m, "repl_role").as_deref(), Some("leader"), "{m}");
        assert_eq!(metrics_field(&m, "repl_promotions").as_deref(), Some("1"), "{m}");

        // The promoted leader accepts writes again.
        let root = label_of_first(&follower, 1, "a");
        let resp = fc
            .request(&format!(
                "INSERT 1 {} {} {} 0 <b/>",
                root.global, root.local, root.is_root
            ))
            .unwrap();
        assert!(resp.starts_with("OK label="), "{resp}");
        let after_write = answer_vector(&mut fc);
        assert_ne!(after_write, oracles[k], "the write must be visible");

        if case == 0 {
            // The follower journaled its bootstrap + tail into its own
            // data dir: a restart from that dir alone recovers the
            // promoted state, writes included.
            follower.stop();
            let (reborn, mut rc) = start_leader(&follower_dir);
            assert_eq!(answer_vector(&mut rc), after_write, "restart lost promoted state");
            reborn.stop();
        } else {
            follower.stop();
        }
    }

    // Mid-stream kills: a slow-polling follower is killed out from under
    // an unfinished stream. Whatever it applied, the promoted state must
    // be byte-identical to one of the seven prefix oracles — never a
    // hybrid no single-node history could produce.
    for lagging in 0..2 {
        let (leader, mut lc) = start_leader(&dir.join(format!("leader-mid-{lagging}")));
        let (follower, mut fc) =
            start_follower(leader.addr(), None, if lagging == 0 { 150 } else { 40 });
        for line in &ops {
            assert!(lc.request(line).unwrap().starts_with("OK"), "{line}");
        }
        leader.stop(); // no catch-up wait: the stream dies mid-flight

        assert_eq!(fc.request("PROMOTE").unwrap(), "OK role=leader promoted=true");
        let answers = answer_vector(&mut fc);
        let prefix = oracles.iter().position(|o| *o == answers);
        assert!(
            prefix.is_some(),
            "mid-stream promoted state matches no single-node prefix (lagging={lagging})"
        );
        follower.stop();
    }
}

/// A `PROMOTE` that lands while the follower is mid-bootstrap (snapshot
/// fetched but not yet installed) must win: the follower thread exits
/// without swapping the old leader's snapshot into the catalog, so the
/// newly promoted node's state can never be clobbered by a stale image
/// arriving after the operator's failover decision.
#[test]
fn promote_during_bootstrap_does_not_install_the_snapshot() {
    use ruid_service::{Fault, FaultPlan};

    let dir = scratch("promote-mid-bootstrap");
    let corpus = dir.join("corpus.xml");
    std::fs::write(&corpus, corpus_xml()).unwrap();

    // Leader request indices are deterministic: 0 = LOAD, 1 = SNAPSHOT
    // (both text, below), 2 = the follower's REPL HELLO, 3 = its REPL
    // SNAPSHOT fetch. Stalling index 3 freezes the follower *inside*
    // bootstrap, after the catalog-install decision point is armed.
    let plan = FaultPlan::new().inject(3, Fault::StallHandler { ms: 4_000 });
    let config = ServerConfig {
        data_dir: Some(dir.join("leader")),
        fsync: FsyncPolicy::Always,
        fault_plan: Some(std::sync::Arc::new(plan)),
        ..ServerConfig::default()
    };
    let leader = Server::start(config).unwrap();
    let mut lc = Client::connect(leader.addr()).unwrap();
    assert!(lc.request(&format!("LOAD {}", corpus.display())).unwrap().starts_with("OK id=1"));
    // A materialized snapshot is what makes the follower's bootstrap
    // fetch one (and hit the stalled request) instead of starting empty.
    assert!(lc.request("SNAPSHOT").unwrap().starts_with("OK"));

    let (follower, mut fc) = start_follower(leader.addr(), None, 5);
    wait_until("bootstrap underway", Duration::from_secs(5), || {
        follower.repl().sample().bootstraps >= 1
    });

    // The follower is now blocked in the 4s-stalled snapshot fetch.
    // Promote it: the request must complete well inside its own 10s
    // deadline — the follower observes the stop as soon as the fetch
    // returns — and the fetched image must be discarded, not installed.
    let resp = fc.request("PROMOTE").unwrap();
    assert_eq!(resp, "OK role=leader promoted=true");
    let m = fc.request("METRICS").unwrap();
    assert_eq!(metrics_field(&m, "repl_role").as_deref(), Some("leader"), "{m}");
    assert_eq!(metrics_field(&m, "repl_promotions").as_deref(), Some("1"), "{m}");
    assert!(
        fc.request("QUERY 1 /a").unwrap().starts_with("ERR no document"),
        "the old leader's snapshot must not be installed after promotion"
    );

    // Give the stalled bootstrap ample time to have unwound, then check
    // again: the image must not land late either.
    std::thread::sleep(Duration::from_millis(1_500));
    assert!(
        fc.request("QUERY 1 /a").unwrap().starts_with("ERR no document"),
        "the fetched snapshot leaked into the catalog after the stall elapsed"
    );

    // The promoted node is a real leader: local writes flow again.
    let resp = fc.request(&format!("LOAD {}", corpus.display())).unwrap();
    assert!(resp.starts_with("OK id="), "{resp}");
    let id = resp["OK id=".len()..].split_whitespace().next().unwrap().to_owned();
    let resp = fc.request(&format!("QUERY {id} //b")).unwrap();
    assert!(resp.starts_with("OK") && !resp.starts_with("OK 0"), "{resp}");
    follower.stop();
    leader.stop();
}

/// A forged sequence number on the replication channel (Fault::ForgeSeq)
/// must be refused by the follower's record validation, forcing a clean
/// re-bootstrap that converges back to the leader's state.
#[test]
fn forged_seq_is_refused_then_recovered_by_rebootstrap() {
    let dir = scratch("forge-seq");
    let corpus = dir.join("corpus.xml");
    std::fs::write(&corpus, corpus_xml()).unwrap();

    let (leader, mut lc) = start_leader(&dir.join("leader"));
    assert!(lc
        .request(&format!("LOAD {}", corpus.display()))
        .unwrap()
        .starts_with("OK id=1"));
    let (follower, mut fc) = start_follower(leader.addr(), None, 5);
    let before = answer_vector(&mut lc);
    wait_until("initial catch-up", Duration::from_secs(10), || {
        answer_vector(&mut Client::connect(follower.addr()).unwrap()) == before
    });

    // Arm the fault, then commit an op so the next shipped chunk carries
    // a record whose sequence field is flipped.
    leader.repl().arm_forge();
    let root = label_of_first(&leader, 1, "a");
    assert!(lc
        .request(&format!(
            "INSERT 1 {} {} {} 0 <b/>",
            root.global, root.local, root.is_root
        ))
        .unwrap()
        .starts_with("OK"));
    let want = answer_vector(&mut lc);

    // The follower must (a) refuse the forged stream and (b) converge
    // anyway via a fresh bootstrap.
    wait_until("forged chunk refused", Duration::from_secs(10), || {
        follower.repl().sample().refusals >= 1
    });
    wait_until("post-forge convergence", Duration::from_secs(10), || {
        answer_vector(&mut Client::connect(follower.addr()).unwrap()) == want
    });
    let m = fc.request("METRICS").unwrap();
    assert!(
        metrics_field(&m, "repl_bootstraps").unwrap().parse::<u64>().unwrap() >= 2,
        "refusal must force a re-bootstrap: {m}"
    );
    follower.stop();
    leader.stop();
}

/// A randomized fault storm (torn writes, stalls, delays, early EOFs,
/// forged sequences) on the leader's wire must never wedge the follower:
/// backoff reconnects and re-bootstraps always converge once the storm
/// subsides.
#[test]
fn replication_survives_a_randomized_fault_storm() {
    use ruid_service::{Fault, FaultPlan};

    let dir = scratch("storm");
    let corpus = dir.join("corpus.xml");
    std::fs::write(&corpus, corpus_xml()).unwrap();

    let plan = FaultPlan::randomized(
        0x5EED_0017,
        160,
        0.30,
        &[
            Fault::TornWrite { bytes: 9 },
            Fault::DelayMs { ms: 15 },
            Fault::EarlyEof,
            Fault::StallHandler { ms: 10 },
            Fault::ForgeSeq,
        ],
    );
    let config = ServerConfig {
        data_dir: Some(dir.join("leader")),
        fsync: FsyncPolicy::Always,
        fault_plan: Some(std::sync::Arc::new(plan)),
        ..ServerConfig::default()
    };
    let leader = Server::start(config).unwrap();
    let (follower, _fc) = start_follower(leader.addr(), None, 5);
    let mut loaded = false;
    for _ in 0..40 {
        // The storm also tears the control connection; retry the LOAD
        // until one copy lands (idempotence is not the point here).
        match Client::connect(leader.addr()) {
            Ok(mut c) => match c.request(&format!("LOAD {}", corpus.display())) {
                Ok(resp) if resp.starts_with("OK id=1") => {
                    loaded = true;
                    break;
                }
                _ => std::thread::sleep(Duration::from_millis(20)),
            },
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    assert!(loaded, "LOAD never landed through the storm");
    // After index 160 the plan is exhausted: the channel heals and the
    // follower must converge to the leader's answers. Both vector reads
    // retry, since the tail of the storm can still tear them.
    let try_answers = |addr: std::net::SocketAddr| -> Option<Vec<String>> {
        let mut c = Client::connect(addr).ok()?;
        let mut answers = Vec::new();
        for doc in [1u64, 2] {
            for xpath in CORPUS {
                answers.push(c.request(&format!("QUERY {doc} {xpath}")).ok()?);
            }
        }
        Some(answers)
    };
    let want = loop {
        if let Some(answers) = try_answers(leader.addr()) {
            break answers;
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    wait_until("post-storm convergence", Duration::from_secs(30), || {
        try_answers(follower.addr()) == Some(want.clone())
    });
    follower.stop();
    leader.stop();
}
