//! MVCC linearizability: interleaved readers and writers against one
//! document, checked by a differential oracle.
//!
//! The catalog's claim is that a committed structural update never blocks
//! or corrupts a reader: every reader pins an immutable `Arc` snapshot
//! stamped with the generation of the commit that produced it, and the
//! answer it computes must be **byte-identical** to a single-threaded
//! replay of exactly the committed prefix of operations up to that
//! generation. The replay goes through `durable::DocState::apply` — the
//! same code the live copy-on-write commit and WAL recovery run — while
//! the live bundle's name index and path summary are patched
//! incrementally, so the comparison also catches any drift between the
//! patched and rebuilt derivations.
//!
//! The second half sweeps a torn WAL write through the commit critical
//! section (the established crash-sweep idiom): after the injected
//! mid-commit "power cut" and a restart, recovery must land on exactly a
//! committed generation — the acked prefix, or the acked prefix plus the
//! interrupted op when its record reached the disk in full — never on a
//! third state.

use std::sync::{Arc, Mutex};
use std::thread;

use durable::{doc_fingerprint, DocState, IoFault, IoFaultPlan, NodeContent, WalOp};
use ruid_core::{PartitionConfig, Ruid2};
use ruid_service::proto::{fmt_label, Engine};
use ruid_service::{run_query, Catalog, Client, FsyncPolicy, LoadedDoc, Server, ServerConfig, ServerHandle};
use schemes::NumberingScheme;
use xmlgen::SplitMix64;

const SEED_XML: &str =
    "<r><a><b><c/></b><c/></a><b><a/><c/><c/></b><a><c/></a><c/></r>";

const QUERIES: [&str; 8] =
    ["//a", "//b", "//c", "//x", "/r/a", "//a/c", "//b//c", "//y"];

const ENGINES: [Engine; 4] = [Engine::Tree, Engine::Ruid, Engine::Indexed, Engine::Planned];

/// Depth must match `ServerConfig::default().depth` — the replay numbers
/// the document with the same partition policy the server used.
const DEPTH: usize = 3;

fn scratch(name: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("ruid-mvcc-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start(data_dir: &std::path::Path) -> (ServerHandle, Client) {
    let config = ServerConfig {
        data_dir: Some(data_dir.to_path_buf()),
        fsync: FsyncPolicy::Always,
        ..ServerConfig::default()
    };
    let handle = Server::start(config).unwrap();
    let client = Client::connect(handle.addr()).unwrap();
    (handle, client)
}

fn load(client: &mut Client, path: &str) -> u64 {
    let resp = client.request(&format!("LOAD {path}")).unwrap();
    assert!(resp.starts_with("OK id="), "{resp}");
    resp.split_whitespace().find_map(|t| t.strip_prefix("id=")).unwrap().parse().unwrap()
}

/// Pulls `generation=<n>` out of an update response.
fn generation_of(resp: &str) -> u64 {
    resp.split_whitespace()
        .find_map(|t| t.strip_prefix("generation="))
        .unwrap_or_else(|| panic!("no generation in {resp:?}"))
        .parse()
        .unwrap()
}

/// All element nodes of a snapshot in preorder (root first).
fn elements(loaded: &LoadedDoc) -> Vec<xmldom::NodeId> {
    let root = loaded.doc.root_element().unwrap();
    loaded.doc.descendants(root).filter(|&n| loaded.doc.element_name(n).is_some()).collect()
}

/// One writer-generated structural op: the wire line that was sent and
/// the equivalent [`WalOp`] the serial replay applies.
#[derive(Clone)]
struct GenOp {
    line: String,
    op: WalOp,
}

/// Draws a random op against the *currently committed* snapshot. The pick
/// may race a concurrent writer and fail server-side (its target label
/// vanishes); that's fine — only acknowledged ops enter the log.
fn draw_op(rng: &mut SplitMix64, snapshot: &LoadedDoc, doc_id: u64) -> Option<GenOp> {
    let elems = elements(snapshot);
    let kind = rng.gen_range(0..100);
    if kind < 55 {
        // INSERT under a random element.
        let parent_node = elems[rng.gen_range(0..elems.len())];
        let parent = snapshot.scheme.label_of(parent_node);
        let position = rng.gen_range(0..4) as u32;
        let (fragment, content) = match rng.gen_range(0..4) {
            0 => ("<x/>".to_string(), NodeContent::Element { name: "x".into(), attributes: vec![] }),
            1 => (
                "<y k=\"1\"/>".to_string(),
                NodeContent::Element { name: "y".into(), attributes: vec![("k".into(), "1".into())] },
            ),
            2 => ("t0".to_string(), NodeContent::Text("t0".into())),
            _ => ("<!--c-->".to_string(), NodeContent::Comment("c".into())),
        };
        let Ruid2 { global, local, is_root } = parent;
        Some(GenOp {
            line: format!("INSERT {doc_id} {global} {local} {is_root} {position} {fragment}"),
            op: WalOp::Insert { doc_id, parent, position, content },
        })
    } else if kind < 85 {
        // DELETE a random non-root element.
        if elems.len() < 2 {
            return None;
        }
        let node = elems[1 + rng.gen_range(0..elems.len() - 1)];
        let label = snapshot.scheme.label_of(node);
        let Ruid2 { global, local, is_root } = label;
        Some(GenOp {
            line: format!("DELETE {doc_id} {global} {local} {is_root}"),
            op: WalOp::Delete { doc_id, label },
        })
    } else {
        Some(GenOp { line: format!("RELABEL {doc_id}"), op: WalOp::Repartition { doc_id } })
    }
}

/// Renders query hits exactly like the wire does: count + labels.
fn render_answer(loaded: &LoadedDoc, hits: &[xmldom::NodeId]) -> String {
    let mut out = format!("{}", hits.len());
    for &node in hits {
        out.push(' ');
        out.push_str(&fmt_label(&loaded.scheme.label_of(node)));
    }
    out
}

/// What one reader observed: the snapshot's generation and the answer it
/// computed from that pinned snapshot.
struct Observation {
    generation: u64,
    query: usize,
    engine: usize,
    answer: String,
}

fn run_oracle(seed: u64, writers: usize, readers: usize) {
    let dir = scratch(&format!("oracle-{seed}-{writers}x{readers}"));
    let xml_path = dir.join("doc.xml");
    std::fs::write(&xml_path, SEED_XML).unwrap();
    let path = xml_path.display().to_string();
    let (handle, mut client) = start(&dir.join("data"));
    let doc_id = load(&mut client, &path);
    let catalog: Arc<Catalog> = Arc::clone(handle.catalog());
    let load_generation = catalog.get(doc_id).unwrap().generation;

    // (generation, op) of every *acknowledged* update, any order.
    let committed: Arc<Mutex<Vec<(u64, WalOp)>>> = Arc::new(Mutex::new(Vec::new()));
    let addr = handle.addr();

    let observations: Vec<Observation> = thread::scope(|s| {
        let mut writer_handles = Vec::new();
        for w in 0..writers {
            let catalog = Arc::clone(&catalog);
            let committed = Arc::clone(&committed);
            writer_handles.push(s.spawn(move || {
                let mut rng = SplitMix64::seed_from_u64(seed ^ (0xA0 + w as u64));
                let mut client = Client::connect(addr).unwrap();
                for _ in 0..25 {
                    let snapshot = catalog.get(doc_id).unwrap();
                    let Some(gen_op) = draw_op(&mut rng, &snapshot, doc_id) else { continue };
                    let resp = client.request(&gen_op.line).unwrap();
                    if resp.starts_with("OK") {
                        committed.lock().unwrap().push((generation_of(&resp), gen_op.op));
                    } else {
                        assert!(resp.starts_with("ERR"), "{resp}");
                    }
                }
            }));
        }
        let mut reader_handles = Vec::new();
        for r in 0..readers {
            let catalog = Arc::clone(&catalog);
            reader_handles.push(s.spawn(move || {
                let mut rng = SplitMix64::seed_from_u64(seed ^ (0xBEAD + r as u64));
                let mut observations = Vec::new();
                for _ in 0..40 {
                    // Pinning the Arc *is* the snapshot: everything below
                    // runs without locks against immutable state.
                    let snapshot = catalog.get(doc_id).unwrap();
                    let query = rng.gen_range(0..QUERIES.len());
                    let engine = rng.gen_range(0..ENGINES.len());
                    let (hits, _) =
                        run_query(&snapshot, QUERIES[query], ENGINES[engine]).unwrap();
                    observations.push(Observation {
                        generation: snapshot.generation,
                        query,
                        engine,
                        answer: render_answer(&snapshot, &hits),
                    });
                }
                observations
            }));
        }
        for h in writer_handles {
            h.join().unwrap();
        }
        reader_handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });

    let final_snapshot = catalog.get(doc_id).unwrap();
    handle.stop();

    // Serial replay oracle: apply the committed ops in generation order
    // (generations are drawn inside the writer critical section, so that
    // order *is* the commit order) and check every reader observation
    // against the state at its pinned generation.
    let mut committed = Arc::try_unwrap(committed).unwrap().into_inner().unwrap();
    committed.sort_by_key(|&(generation, _)| generation);
    assert!(
        !committed.is_empty(),
        "seed {seed}: no update committed — the schedule exercised nothing"
    );
    let mut observations = observations;
    observations.sort_by_key(|o| o.generation);

    let mut state = DocState::build(
        doc_id,
        path.clone(),
        SEED_XML,
        PartitionConfig::by_depth(DEPTH),
        false,
    )
    .unwrap();
    let mut next_op = 0usize;
    let mut bundle: Option<LoadedDoc> = None;
    for obs in &observations {
        assert!(
            obs.generation >= load_generation,
            "seed {seed}: reader pinned generation {} below the load generation \
             {load_generation}",
            obs.generation
        );
        while next_op < committed.len() && committed[next_op].0 <= obs.generation {
            state.apply(&committed[next_op].1).unwrap();
            next_op += 1;
            bundle = None;
        }
        let replayed = bundle.get_or_insert_with(|| {
            LoadedDoc::from_recovered(path.clone(), state.doc.clone(), state.scheme.clone(), false)
        });
        let (hits, _) = run_query(replayed, QUERIES[obs.query], ENGINES[obs.engine]).unwrap();
        let expected = render_answer(replayed, &hits);
        assert_eq!(
            obs.answer, expected,
            "seed {seed}: reader at generation {} disagrees with the serialized replay \
             of its committed prefix\n  query: {}\n  engine: {:?}\n  pinned snapshot answered: {}\n  \
             serial replay answered:  {}",
            obs.generation, QUERIES[obs.query], ENGINES[obs.engine], obs.answer, expected
        );
    }

    // After replaying *everything*, the oracle and the final catalog
    // state must be indistinguishable (content and labels).
    while next_op < committed.len() {
        state.apply(&committed[next_op].1).unwrap();
        next_op += 1;
    }
    assert_eq!(
        doc_fingerprint(&state.doc, &state.scheme),
        doc_fingerprint(&final_snapshot.doc, &final_snapshot.scheme),
        "seed {seed}: final catalog state diverged from the serial replay of all \
         {} committed ops",
        committed.len()
    );
}

#[test]
fn interleaved_readers_match_serialized_replay() {
    for seed in [11, 42, 4242] {
        for (writers, readers) in [(2, 2), (4, 4)] {
            run_oracle(seed, writers, readers);
        }
    }
}

// ------------------------------------------------------------ crash sweep

/// Replays `ops` over the seed document, single-threaded.
fn replay(ops: &[WalOp]) -> DocState {
    let mut state = DocState::build(
        1,
        "doc.xml".into(),
        SEED_XML,
        PartitionConfig::by_depth(DEPTH),
        false,
    )
    .unwrap();
    for op in ops {
        state.apply(op).unwrap();
    }
    state
}

/// Torn WAL write mid-commit, then restart: recovery must land on exactly
/// a committed generation. "Committed" here is what the WAL made durable:
/// the acked prefix, plus the interrupted op *only* when its record
/// reached the disk in full (the crash-after-write, before-ack window) —
/// never a third state, and never a state the readers could distinguish
/// from those.
#[test]
fn crash_mid_commit_recovers_to_a_committed_generation() {
    // Byte offsets swept across the torn record: inside the length
    // prefix, inside the header, inside the payload, and past the end
    // (= the record is fully durable but the commit never acked).
    let cuts = [0usize, 1, 3, 4, 8, 12, 15, 16, 17, 21, 27, 33, 48, 64, 96, 1 << 16];
    let mut recovered_pre = 0usize;
    let mut recovered_post = 0usize;
    for (case, &at) in cuts.iter().enumerate() {
        let dir = scratch(&format!("crash-{case}"));
        let xml_path = dir.join("doc.xml");
        std::fs::write(&xml_path, SEED_XML).unwrap();
        let data_dir = dir.join("data");
        let (handle, mut client) = start(&data_dir);
        let doc_id = load(&mut client, &xml_path.display().to_string());
        assert_eq!(doc_id, 1);

        // Two acked commits before the crash window.
        let mut acked: Vec<WalOp> = Vec::new();
        for fragment in ["<x/>", "<y k=\"1\"/>"] {
            let snapshot = handle.catalog().get(doc_id).unwrap();
            let root = snapshot.doc.root_element().unwrap();
            let Ruid2 { global, local, is_root } = snapshot.scheme.label_of(root);
            let resp = client
                .request(&format!("INSERT {doc_id} {global} {local} {is_root} 0 {fragment}"))
                .unwrap();
            assert!(resp.starts_with("OK"), "{resp}");
            let content = if fragment == "<x/>" {
                NodeContent::Element { name: "x".into(), attributes: vec![] }
            } else {
                NodeContent::Element { name: "y".into(), attributes: vec![("k".into(), "1".into())] }
            };
            acked.push(WalOp::Insert {
                doc_id,
                parent: snapshot.scheme.label_of(root),
                position: 0,
                content,
            });
        }

        // The interrupted commit: tear its WAL append at byte `at`. The
        // writer has appended 3 records so far (LOAD + 2 inserts), so the
        // next append is I/O op index 3.
        handle
            .durability()
            .unwrap()
            .arm_wal_faults(IoFaultPlan::new().inject(3, IoFault::TornWrite { at }));
        let snapshot = handle.catalog().get(doc_id).unwrap();
        let root = snapshot.doc.root_element().unwrap();
        let Ruid2 { global, local, is_root } = snapshot.scheme.label_of(root);
        let resp = client
            .request(&format!("INSERT {doc_id} {global} {local} {is_root} 1 <z/>"))
            .unwrap();
        assert!(resp.starts_with("ERR"), "torn append must fail the commit: {resp}");
        let torn_op = WalOp::Insert {
            doc_id,
            parent: snapshot.scheme.label_of(root),
            position: 1,
            content: NodeContent::Element { name: "z".into(), attributes: vec![] },
        };
        // The failed commit must not have been installed: readers still
        // see the acked state.
        let after_err = handle.catalog().get(doc_id).unwrap();
        assert_eq!(
            doc_fingerprint(&after_err.doc, &after_err.scheme),
            {
                let s = replay(&acked);
                doc_fingerprint(&s.doc, &s.scheme)
            },
            "cut at {at}: a failed commit leaked into the catalog"
        );
        // "kill -9": drop the server without a clean SHUTDOWN. The torn
        // writer is never appended to again.
        handle.stop();

        let (handle, mut client) = start(&data_dir);
        let recovered = handle.catalog().get(doc_id).unwrap_or_else(|| {
            panic!("cut at {at}: document lost across the crash")
        });
        let fp = doc_fingerprint(&recovered.doc, &recovered.scheme);
        let pre = replay(&acked);
        let pre_fp = doc_fingerprint(&pre.doc, &pre.scheme);
        let post = {
            let mut ops = acked.clone();
            ops.push(torn_op);
            replay(&ops)
        };
        let post_fp = doc_fingerprint(&post.doc, &post.scheme);
        assert!(
            fp == pre_fp || fp == post_fp,
            "cut at {at}: recovery produced a state that is neither the acked prefix \
             nor the fully-durable interrupted op"
        );
        if fp == pre_fp {
            recovered_pre += 1;
        } else {
            recovered_post += 1;
        }
        // The recovered catalog serves, with a fresh committed generation.
        assert!(recovered.generation >= 1);
        let resp = client.request(&format!("QUERY {doc_id} //x")).unwrap();
        assert!(resp.starts_with("OK 1 "), "cut at {at}: {resp}");
        handle.stop();
    }
    // The sweep must actually exercise both recovery outcomes: small cuts
    // lose the record, a past-the-end cut persists it whole.
    assert!(recovered_pre > 0, "no cut recovered to the acked prefix");
    assert!(recovered_post > 0, "no cut recovered past the interrupted op");
}
