//! Binary wire-protocol suite: property-style codec round-trips over a
//! seeded corpus, out-of-order pipelining under forced handler stalls,
//! text/binary byte-identity on one shared port, and the batch verbs.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ruid_core::Ruid2;
use ruid_service::proto::Engine;
use ruid_service::wire::{
    self, Decoded, RequestFrame, ResponseFrame, WireRequest, WireResponse,
};
use ruid_service::{
    BinaryClient, Client, Fault, FaultPlan, Server, ServerConfig, ServerHandle,
};
use xmlgen::SplitMix64;

/// The differential-test query corpus (mirrors `tests/planner_differential.rs`):
/// every axis/predicate family the planner distinguishes, over a/b/c trees.
const CORPUS: &[&str] = &[
    "/a",
    "/a/b",
    "/a/b/c",
    "//b",
    "//c",
    "//b/c",
    "//b//a",
    "/a//c",
    "//*",
    "/a/*",
    "//b/*",
    "/a/b[c]",
    "//b[c]/c",
    "//b[c]//a",
    "//b[not(c)]",
    "//b[c][a]",
    "//b[1]",
    "//b[last()]",
    "//b[c][1]",
    "//b/c/..",
    "//c/parent::b",
    "//b[count(c) >= 1]",
    "//a[b or c]",
];

/// A small a/b/c document exercising every corpus query shape: `b` nodes
/// with and without `c` children, nested `a` descendants, positional mixes.
const CORPUS_XML: &str = "<a><b><c/><c/><a/></b><b><c><a/></c></b><b/><c/><b><a/><c/></b></a>";

fn write_corpus() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ruid-wire-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("corpus.xml");
    std::fs::write(&path, CORPUS_XML).unwrap();
    path
}

fn start() -> ServerHandle {
    Server::start(ServerConfig::default()).unwrap()
}

fn load_corpus(handle: &ServerHandle) -> u64 {
    let mut client = Client::connect(handle.addr()).unwrap();
    let resp = client.request(&format!("LOAD {}", write_corpus().display())).unwrap();
    assert!(resp.starts_with("OK id="), "{resp}");
    resp.split_whitespace().find_map(|t| t.strip_prefix("id=")).unwrap().parse().unwrap()
}

fn wait_for(mut probe: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if probe() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    false
}

// ---------------------------------------------------------------- codec --

fn random_xpath(rng: &mut SplitMix64) -> String {
    let menu = ["/a", "//b", "//b[c]/c", "/a/*", "//c/parent::b", "//b[count(c) >= 1]"];
    let mut xpath = String::new();
    for _ in 0..rng.gen_range(1..4usize) {
        xpath.push_str(menu[rng.gen_range(0..menu.len())]);
    }
    xpath
}

fn random_label(rng: &mut SplitMix64) -> Ruid2 {
    Ruid2::new(rng.gen_range(1..1_000u64), rng.gen_range(1..1_000u64), rng.gen_bool(0.1))
}

/// Every verb, random field content, seeded: the `i % 8` cycle guarantees
/// full verb coverage regardless of what the generator draws.
fn random_request(i: usize, rng: &mut SplitMix64) -> WireRequest {
    let doc = rng.gen_range(0..u64::MAX);
    match i % 8 {
        0 => WireRequest::Ping,
        1 => {
            let engine = match rng.gen_range(0..4u32) {
                0 => Engine::Planned,
                1 => Engine::Tree,
                2 => Engine::Ruid,
                _ => Engine::Indexed,
            };
            WireRequest::Query { doc, engine, xpath: random_xpath(rng) }
        }
        2 => WireRequest::Label { doc, xpath: random_xpath(rng) },
        3 => WireRequest::Parent { doc, label: random_label(rng) },
        4 => WireRequest::Get { doc, label: random_label(rng) },
        5 => {
            let n = rng.gen_range(0..9usize);
            WireRequest::MQuery { doc, xpaths: (0..n).map(|_| random_xpath(rng)).collect() }
        }
        6 => {
            let n = rng.gen_range(0..9usize);
            WireRequest::MLabel { doc, xpaths: (0..n).map(|_| random_xpath(rng)).collect() }
        }
        _ => WireRequest::Text { line: format!("STATS {}", rng.gen_range(0..100u64)) },
    }
}

fn random_response(rng: &mut SplitMix64) -> WireResponse {
    if rng.gen_bool(0.5) {
        WireResponse::Line(format!("OK {} matches", rng.gen_range(0..10_000u64)))
    } else {
        let n = rng.gen_range(0..9usize);
        WireResponse::Batch((0..n).map(|k| format!("OK {k} matches")).collect())
    }
}

/// Property: for a seeded corpus covering every verb, `decode(encode(x))`
/// is the identity with exact `consumed` accounting, and *every* strict
/// prefix decodes to `Incomplete` — the codec never panics and never
/// misreads a truncated frame as anything else.
#[test]
fn codec_roundtrips_and_rejects_every_truncation() {
    let mut rng = SplitMix64::seed_from_u64(0xE16_C0DEC);
    for i in 0..256 {
        let id = rng.gen_range(0..u64::MAX);
        let request = random_request(i, &mut rng);
        let mut bytes = Vec::new();
        wire::encode_request(id, &request, &mut bytes);

        // Full buffer (plus trailing garbage) decodes to the same frame.
        let mut padded = bytes.clone();
        padded.extend_from_slice(b"tail bytes of the next frame");
        match wire::decode_request(&padded, 1 << 20) {
            Decoded::Frame { frame, consumed } => {
                assert_eq!(consumed, bytes.len(), "consumed must not eat the tail");
                assert_eq!(frame, RequestFrame { id, request: request.clone() });
            }
            other => panic!("frame {i} failed to decode: {other:?}"),
        }
        // Truncation at every byte boundary is Incomplete, never a panic,
        // never a bogus frame.
        for cut in 0..bytes.len() {
            assert_eq!(
                wire::decode_request(&bytes[..cut], 1 << 20),
                Decoded::Incomplete,
                "frame {i} truncated at {cut}/{} must be Incomplete",
                bytes.len()
            );
        }
    }

    // Same property for the response direction.
    for _ in 0..128 {
        let id = rng.gen_range(0..u64::MAX);
        let response = random_response(&mut rng);
        let mut bytes = Vec::new();
        wire::encode_response(id, &response, &mut bytes);
        match wire::decode_response(&bytes) {
            Decoded::Frame { frame, consumed } => {
                assert_eq!(consumed, bytes.len());
                assert_eq!(frame, ResponseFrame { id, response: response.clone() });
            }
            other => panic!("response failed to decode: {other:?}"),
        }
        for cut in 0..bytes.len() {
            assert_eq!(wire::decode_response(&bytes[..cut]), Decoded::Incomplete);
        }
    }
}

/// Seeded junk (wrong magic, corrupt bodies) must never panic the decoder:
/// every outcome is one of the typed `Decoded` variants.
#[test]
fn decoder_survives_seeded_junk() {
    let mut rng = SplitMix64::seed_from_u64(0xBAD_F00D);
    for _ in 0..512 {
        let len = rng.gen_range(0..64usize);
        let mut junk: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u32) as u8).collect();
        let _ = wire::decode_request(&junk, 4096);
        let _ = wire::decode_response(&junk);
        // Force the request magic so the header path runs too.
        if !junk.is_empty() {
            junk[0] = wire::REQ_MAGIC;
            let _ = wire::decode_request(&junk, 4096);
        }
    }
}

// ----------------------------------------------------------- pipelining --

/// The heart of the tentpole: with request 0 stalled in its handler, a
/// later cheap request on the same connection must overtake it — replies
/// arrive out of order, each carrying the id of the request it answers.
#[test]
fn pipelined_replies_interleave_out_of_order() {
    let plan = Arc::new(FaultPlan::new().inject(0, Fault::StallHandler { ms: 400 }));
    let config = ServerConfig { fault_plan: Some(plan), ..ServerConfig::default() };
    let handle = Server::start(config).unwrap();

    let mut client = BinaryClient::connect(handle.addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(5))).unwrap();
    let stalled = client.send(&WireRequest::Ping).unwrap();
    let quick = client.send(&WireRequest::Ping).unwrap();
    assert_ne!(stalled, quick);
    client.flush().unwrap();

    let first = client.recv().unwrap();
    let second = client.recv().unwrap();
    assert_eq!(first.id, quick, "the unstalled request must answer first");
    assert_eq!(second.id, stalled, "the stalled request answers later, same id");
    for frame in [first, second] {
        assert_eq!(frame.response, WireResponse::Line("OK pong".to_owned()));
    }

    // `pipeline()` re-associates by id, so request order comes back even
    // though the wire order was inverted.
    let plan = Arc::new(FaultPlan::new().inject(0, Fault::StallHandler { ms: 300 }));
    let config = ServerConfig { fault_plan: Some(plan), ..ServerConfig::default() };
    let handle2 = Server::start(config).unwrap();
    let mut client2 = BinaryClient::connect(handle2.addr()).unwrap();
    client2.set_timeout(Some(Duration::from_secs(5))).unwrap();
    let responses = client2
        .pipeline(&[
            WireRequest::Ping,
            WireRequest::Text { line: "LIST".to_owned() },
            WireRequest::Ping,
        ])
        .unwrap();
    assert_eq!(responses[0], WireResponse::Line("OK pong".to_owned()));
    assert_eq!(responses[1], WireResponse::Line("OK 0".to_owned()));
    assert_eq!(responses[2], WireResponse::Line("OK pong".to_owned()));

    handle.stop();
    handle2.stop();
}

/// Pipeline-depth accounting: frames decoded per reader pass land in the
/// `ruid_pipeline_depth` histogram.
#[test]
fn pipeline_depth_is_recorded() {
    let handle = start();
    let mut client = BinaryClient::connect(handle.addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(5))).unwrap();
    let requests: Vec<WireRequest> = (0..16).map(|_| WireRequest::Ping).collect();
    let responses = client.pipeline(&requests).unwrap();
    assert_eq!(responses.len(), 16);
    let metrics = Arc::clone(handle.metrics());
    assert!(
        wait_for(|| metrics.pipeline_depth().total() >= 1
            && metrics.pipeline_depth().sum() >= 16),
        "pipeline depth histogram never accounted the burst"
    );
    handle.stop();
}

// -------------------------------------------------- protocol coexistence --

/// One port, both protocols, byte-identical answers: for every corpus
/// query the text line, the binary `Text` verb, the native binary `QUERY`
/// and the `MQUERY` batch must return the exact same response string.
#[test]
fn text_and_binary_clients_share_a_port_byte_identically() {
    let handle = start();
    let doc = load_corpus(&handle);

    let mut text = Client::connect(handle.addr()).unwrap();
    let mut binary = BinaryClient::connect(handle.addr()).unwrap();
    binary.set_timeout(Some(Duration::from_secs(5))).unwrap();

    let batch = binary.mquery(doc, CORPUS).unwrap();
    assert_eq!(batch.len(), CORPUS.len());
    for (i, xpath) in CORPUS.iter().enumerate() {
        let via_text = text.request(&format!("QUERY {doc} {xpath}")).unwrap();
        let via_compat = binary.request(&format!("QUERY {doc} {xpath}")).unwrap();
        let via_native = binary.query(doc, xpath).unwrap();
        assert!(via_text.starts_with("OK "), "{xpath}: {via_text}");
        assert_eq!(via_compat, via_text, "Text verb differs for {xpath}");
        assert_eq!(via_native, via_text, "binary QUERY differs for {xpath}");
        assert_eq!(batch[i], via_text, "MQUERY line differs for {xpath}");
    }

    // Both protocols were accounted on their own counters.
    let metrics = Arc::clone(handle.metrics());
    let [text_n, binary_n] = metrics.protocol_requests();
    assert!(text_n >= CORPUS.len() as u64, "text counter: {text_n}");
    assert!(binary_n > 2 * CORPUS.len() as u64, "binary counter: {binary_n}");
    handle.stop();
}

/// `MLABEL` equals N single `LABEL`s, and `MQUERY` on a missing document
/// answers one well-formed error line per sub-query instead of tearing
/// down the batch.
#[test]
fn batch_verbs_match_single_requests() {
    let handle = start();
    let doc = load_corpus(&handle);

    let mut text = Client::connect(handle.addr()).unwrap();
    let mut binary = BinaryClient::connect(handle.addr()).unwrap();
    binary.set_timeout(Some(Duration::from_secs(5))).unwrap();

    let labels = binary.mlabel(doc, CORPUS).unwrap();
    for (i, xpath) in CORPUS.iter().enumerate() {
        let single = text.request(&format!("LABEL {doc} {xpath}")).unwrap();
        assert_eq!(labels[i], single, "MLABEL line differs for {xpath}");
    }

    let missing = binary.mquery(doc + 999, &["/a", "//b"]).unwrap();
    assert_eq!(missing.len(), 2);
    for line in &missing {
        assert!(line.starts_with("ERR "), "missing doc must ERR per line: {line}");
    }

    // Batch sizes landed in the histogram (23-query batch ⇒ sum ≥ 23).
    let metrics = Arc::clone(handle.metrics());
    assert!(metrics.batch_size().total() >= 2);
    assert!(metrics.batch_size().sum() >= CORPUS.len() as u64 + 2);

    // Oversized batches are rejected as malformed, connection intact.
    let too_many: Vec<String> = (0..=wire::MAX_BATCH).map(|i| format!("/a{i}")).collect();
    let id = binary.send(&WireRequest::MQuery { doc, xpaths: too_many }).unwrap();
    binary.flush().unwrap();
    let frame = binary.recv().unwrap();
    assert_eq!(frame.id, id);
    match frame.response {
        WireResponse::Line(line) => assert!(line.starts_with("ERR "), "{line}"),
        other => panic!("expected an error line, got {other:?}"),
    }
    assert_eq!(binary.request("PING").unwrap(), "OK pong", "connection survives");
    handle.stop();
}

/// A binary `SHUTDOWN` (via the compatibility verb) must answer before the
/// listener dies — the mux flushes its outbox on the way down.
#[test]
fn binary_shutdown_answers_then_stops() {
    let handle = start();
    let mut binary = BinaryClient::connect(handle.addr()).unwrap();
    binary.set_timeout(Some(Duration::from_secs(5))).unwrap();
    assert_eq!(binary.request("SHUTDOWN").unwrap(), "OK bye");
    handle.join();
}
