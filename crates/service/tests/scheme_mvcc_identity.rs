//! Byte-identity of the interval and ancestry numberings through the
//! MVCC commit path, plus LOADSTREAM durability and shipping.
//!
//! The catalog maintains both span-backed numberings *incrementally*
//! inside `LoadedDoc::apply_update` (the copy-on-write commit every
//! structural write runs). The property under test: after any seeded
//! chain of INSERT / DELETE / RELABEL commits, the incrementally
//! maintained labels — and their encoded sizes — must be byte-identical
//! to schemes rebuilt from scratch against the committed tree. Drift
//! here would mean the interval/ancestry query engines silently answer
//! from a stale numbering while tree and rUID move on.
//!
//! The second half covers the LOADSTREAM ingestion path end to end:
//! a document born from an interval-encoded event stream (never XML
//! text) must survive a WAL restart and ship to a follower replica,
//! answering identically on every engine in all three lives.

use std::time::{Duration, Instant};

use durable::{NodeContent, WalOp};
use ruid_service::{Client, FsyncPolicy, LoadedDoc, Server, ServerConfig, ServerHandle};
use schemes::ancestry::AncestryScheme;
use schemes::interval::IntervalScheme;
use schemes::NumberingScheme;
use xmlgen::SplitMix64;

const SEED_XML: &str =
    "<r><a><b><c/></b><c/></a><b><a/><c/><c/></b><a><c/></a><c/></r>";

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("ruid-scheme-identity-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Asserts the snapshot's incrementally maintained interval/ancestry
/// numberings are byte-identical to from-scratch rebuilds: same label for
/// every node, same encoded size in aggregate.
fn assert_byte_identical(loaded: &LoadedDoc, ctx: &str) {
    let fresh_interval = IntervalScheme::build(&loaded.doc);
    let fresh_ancestry = AncestryScheme::build(&loaded.doc);
    let root = loaded.doc.root_element().unwrap();
    let (mut live_bytes, mut fresh_bytes) = (0usize, 0usize);
    for node in loaded.doc.descendants(root) {
        let (live, fresh) = (loaded.interval.label_of(node), fresh_interval.label_of(node));
        assert_eq!(live, fresh, "interval label drifted from rebuild {ctx}");
        live_bytes += loaded.interval.encoded_bytes(&live);
        fresh_bytes += fresh_interval.encoded_bytes(&fresh);
        let (live, fresh) = (loaded.ancestry.label_of(node), fresh_ancestry.label_of(node));
        assert_eq!(live, fresh, "ancestry label drifted from rebuild {ctx}");
        live_bytes += loaded.ancestry.encoded_bytes(&live);
        fresh_bytes += fresh_ancestry.encoded_bytes(&fresh);
    }
    assert_eq!(live_bytes, fresh_bytes, "encoded sizes diverged from rebuild {ctx}");
}

/// Runs a seeded chain of structural commits through `apply_update` —
/// the exact code path LOAD-then-mutate traffic takes — checking
/// byte-identity after every commit.
fn run_chain(mut loaded: LoadedDoc, seed: u64, steps: usize, ctx: &str) {
    let mut rng = SplitMix64::seed_from_u64(seed);
    assert_byte_identical(&loaded, &format!("{ctx} before any update"));
    for step in 0..steps {
        let root = loaded.doc.root_element().unwrap();
        let elems: Vec<_> = loaded
            .doc
            .descendants(root)
            .filter(|&n| loaded.doc.element_name(n).is_some())
            .collect();
        let kind = rng.gen_range(0..100);
        let op = if kind < 55 || elems.len() < 2 {
            let parent = loaded.scheme.label_of(elems[rng.gen_range(0..elems.len())]);
            let position = rng.gen_range(0..4) as u32;
            let content = match rng.gen_range(0..3) {
                0 => NodeContent::Element { name: "x".into(), attributes: vec![] },
                1 => NodeContent::Element {
                    name: "y".into(),
                    attributes: vec![("k".into(), "1".into())],
                },
                _ => NodeContent::Text("t0".into()),
            };
            WalOp::Insert { doc_id: 1, parent, position, content }
        } else if kind < 85 {
            let victim = elems[1 + rng.gen_range(0..elems.len() - 1)];
            WalOp::Delete { doc_id: 1, label: loaded.scheme.label_of(victim) }
        } else {
            WalOp::Repartition { doc_id: 1 }
        };
        let (next, _applied) = loaded
            .apply_update(&op, (step + 1) as u64)
            .unwrap_or_else(|e| panic!("{ctx} step {step}: {op:?} failed: {e}"));
        loaded = next;
        assert_byte_identical(&loaded, &format!("{ctx} after step {step} ({op:?})"));
    }
}

#[test]
fn update_chain_keeps_span_schemes_byte_identical() {
    let dir = scratch("chain");
    let xml = dir.join("doc.xml");
    std::fs::write(&xml, SEED_XML).unwrap();
    let loaded = LoadedDoc::from_file(&xml.display().to_string(), 3, false).unwrap();
    run_chain(loaded, 0x5EED_2026, 60, "seeded chain");
}

#[test]
fn xmark_update_chain_keeps_span_schemes_byte_identical() {
    let dir = scratch("xmark-chain");
    let xml = dir.join("xmark.xml");
    let doc = xmlgen::xmark::generate(&xmlgen::xmark::XmarkConfig::scaled_to(600, 42));
    std::fs::write(&xml, doc.to_xml_string()).unwrap();
    let loaded = LoadedDoc::from_file(&xml.display().to_string(), 3, false).unwrap();
    run_chain(loaded, 0x5EED_2027, 30, "xmark chain");
}

// ---------------------------------------------------------------------
// LOADSTREAM durability + replication
// ---------------------------------------------------------------------

/// Interval-encoded event stream for `<a><b><c/></b><b><c/>t</b></a>`:
/// five elements plus one text leaf, nested by interval containment.
const STREAM_EVENTS: &str = "1:20:a 2:7:b 3:4:c 8:17:b 9:10:c 11:12:=t0";

fn start_durable(data_dir: &std::path::Path) -> (ServerHandle, Client) {
    let config = ServerConfig {
        data_dir: Some(data_dir.to_path_buf()),
        fsync: FsyncPolicy::Always,
        ..ServerConfig::default()
    };
    let handle = Server::start(config).unwrap();
    let client = Client::connect(handle.addr()).unwrap();
    (handle, client)
}

/// Every engine's answers over the streamed document — the vector two
/// servers must agree on byte for byte.
fn stream_answers(client: &mut Client) -> Vec<String> {
    let mut answers = Vec::new();
    for engine in ["tree", "ruid", "indexed", "interval", "ancestry", "planned"] {
        for xpath in ["//b", "//c", "//b/c", "/a/b", "//*"] {
            answers.push(client.request(&format!("QUERY 1 {xpath} {engine}")).unwrap());
        }
    }
    answers
}

fn wait_until(what: &str, timeout: Duration, mut pred: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while !pred() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn loadstream_survives_restart_and_ships_to_a_follower() {
    let dir = scratch("loadstream");
    let data = dir.join("data");

    // First life: ingest the stream, record every engine's answers.
    let (handle, mut client) = start_durable(&data);
    let resp = client.request(&format!("LOADSTREAM feed {STREAM_EVENTS}")).unwrap();
    assert!(resp.starts_with("OK id=1"), "{resp}");
    let baseline = stream_answers(&mut client);
    let sample = &baseline[3 * 5]; // interval engine, //b
    assert!(sample.starts_with("OK 2"), "interval //b on the streamed doc: {sample}");
    handle.stop();

    // Second life: WAL recovery must rebuild the streamed document with
    // no XML file anywhere on disk.
    let (handle, mut client) = start_durable(&data);
    assert_eq!(stream_answers(&mut client), baseline, "answers changed across restart");
    assert_byte_identical(
        &handle.catalog().get(1).unwrap(),
        "for the recovered streamed document",
    );

    // Third life: a follower bootstrapping from the recovered leader
    // must serve the streamed document identically.
    let follower_config = ServerConfig {
        follow: Some(handle.addr().to_string()),
        repl_poll_ms: 20,
        ..ServerConfig::default()
    };
    let follower = Server::start(follower_config).unwrap();
    let mut fc = Client::connect(follower.addr()).unwrap();
    wait_until("follower to serve the streamed doc", Duration::from_secs(10), || {
        fc.request("QUERY 1 //b interval").unwrap().starts_with("OK")
    });
    assert_eq!(stream_answers(&mut fc), baseline, "follower answers diverged");
    follower.stop();
    handle.stop();
}
