//! Durability end-to-end: a server with a `--data-dir`, killed and
//! restarted, must answer the same queries from its recovered catalog.

use ruid_service::{Client, FsyncPolicy, Server, ServerConfig, ServerHandle};

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("ruid-durability-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_sample(dir: &std::path::Path, name: &str, xml: &str) -> String {
    let path = dir.join(name);
    std::fs::write(&path, xml).unwrap();
    path.display().to_string()
}

fn start(data_dir: &std::path::Path) -> (ServerHandle, Client) {
    let config = ServerConfig {
        data_dir: Some(data_dir.to_path_buf()),
        fsync: FsyncPolicy::Always,
        ..ServerConfig::default()
    };
    let handle = Server::start(config).unwrap();
    let client = Client::connect(handle.addr()).unwrap();
    (handle, client)
}

fn load(client: &mut Client, path: &str) -> u64 {
    let resp = client.request(&format!("LOAD {path}")).unwrap();
    assert!(resp.starts_with("OK id="), "{resp}");
    resp.split_whitespace()
        .find_map(|t| t.strip_prefix("id="))
        .unwrap()
        .parse()
        .unwrap()
}

#[test]
fn restart_answers_the_same_queries() {
    let dir = scratch("restart");
    let books = write_sample(
        &dir,
        "books.xml",
        "<catalog><book id=\"b1\"><title>A</title><price>35</price></book>\
         <book id=\"b2\"><title>B</title><price>20</price></book></catalog>",
    );
    let site = write_sample(&dir, "site.xml", "<site><open/><closed><a/></closed></site>");
    let data_dir = dir.join("data");

    let (handle, mut client) = start(&data_dir);
    let books_id = load(&mut client, &books);
    let site_id = load(&mut client, &site);
    let dropped = load(&mut client, &site);
    assert!(client.request(&format!("UNLOAD {dropped}")).unwrap().starts_with("OK"));
    let query = format!("QUERY {books_id} //book[price > 25]/title");
    let before = client.request(&query).unwrap();
    assert!(before.starts_with("OK 1 "), "{before}");
    let site_query = format!("QUERY {site_id} //closed/a");
    let site_before = client.request(&site_query).unwrap();
    // Abrupt stop: no SHUTDOWN, no SNAPSHOT — the WAL alone carries it.
    handle.stop();

    let (handle, mut client) = start(&data_dir);
    assert_eq!(client.request(&query).unwrap(), before);
    assert_eq!(client.request(&site_query).unwrap(), site_before);
    // The unloaded id stayed unloaded, and fresh ids don't reuse it.
    assert!(client
        .request(&format!("QUERY {dropped} //a"))
        .unwrap()
        .starts_with("ERR no document"));
    let next = load(&mut client, &site);
    assert!(next > dropped, "recovered id counter went backwards: {next}");
    let metrics = client.request("METRICS").unwrap();
    assert!(metrics.contains("durability=on"), "{metrics}");
    assert!(metrics.contains("replayed="), "{metrics}");
    handle.stop();
}

/// Crash recovery rebuilds the path summary: planned queries (the QUERY
/// default) and EXPLAIN must answer byte-identically after an abrupt stop
/// and WAL replay, with the result cache starting cold.
#[test]
fn recovery_rebuilds_path_summary_for_planned_queries() {
    let dir = scratch("planner-recovery");
    let books = write_sample(
        &dir,
        "books.xml",
        "<catalog><book id=\"b1\"><title>A</title><price>35</price></book>\
         <book id=\"b2\"><title>B</title><price>20</price></book></catalog>",
    );
    let data_dir = dir.join("data");

    let (handle, mut client) = start(&data_dir);
    let id = load(&mut client, &books);
    // The pre-crash oracle: planned answers for structural, containment
    // and predicate queries, and the plan EXPLAIN renders for them.
    let queries = [
        format!("QUERY {id} //book/title"),
        format!("QUERY {id} //catalog//title"),
        format!("QUERY {id} //book[price > 25]/title"),
        format!("LABEL {id} //book"),
    ];
    let oracle: Vec<String> =
        queries.iter().map(|q| client.request(q).unwrap()).collect();
    for answer in &oracle {
        assert!(answer.starts_with("OK "), "{answer}");
    }
    let explain_before = client.request(&format!("EXPLAIN {id} //book/title")).unwrap();
    assert!(explain_before.contains("scan"), "{explain_before}");
    // Abrupt stop: no SHUTDOWN, no SNAPSHOT — recovery replays the WAL and
    // must rebuild the in-memory path summary from the recovered DOM.
    handle.stop();

    let (handle, mut client) = start(&data_dir);
    // The cache is in-memory only: before any query, the first
    // post-restart EXPLAIN sees a miss, but the plan itself
    // (summary-derived) is unchanged.
    let explain_after = client.request(&format!("EXPLAIN {id} //book/title")).unwrap();
    assert!(explain_after.contains("cache=miss"), "{explain_after}");
    for (query, before) in queries.iter().zip(&oracle) {
        assert_eq!(&client.request(query).unwrap(), before, "post-recovery {query}");
    }
    // Everything below the cache-status line (the rendered plan and its
    // cardinalities) must be byte-identical to the pre-crash rendering.
    let plan_of = |explain: &str| explain.split_once("\\n").unwrap().1.to_owned();
    assert_eq!(plan_of(&explain_after), plan_of(&explain_before), "recovered plan drifted");
    handle.stop();
}

#[test]
fn snapshot_then_restart_recovers_from_snapshot_plus_tail() {
    let dir = scratch("snapshot");
    let sample = write_sample(&dir, "s.xml", "<r><a/><b>t</b></r>");
    let other = write_sample(&dir, "t.xml", "<q><w/></q>");
    let data_dir = dir.join("data");

    let (handle, mut client) = start(&data_dir);
    let first = load(&mut client, &sample);
    let resp = client.request("SNAPSHOT").unwrap();
    assert!(resp.starts_with("OK generation=1 docs=1"), "{resp}");
    // Ops after the snapshot land in the rotated WAL segment.
    let second = load(&mut client, &other);
    assert!(client.request("PERSIST").unwrap().starts_with("OK records="), "{resp}");
    handle.stop();

    let (handle, mut client) = start(&data_dir);
    assert!(client.request(&format!("QUERY {first} //a")).unwrap().starts_with("OK 1 "));
    assert!(client.request(&format!("QUERY {second} //w")).unwrap().starts_with("OK 1 "));
    let metrics = client.request("METRICS").unwrap();
    assert!(metrics.contains("generation=1"), "{metrics}");
    // A second snapshot bumps the generation.
    assert!(client.request("SNAPSHOT").unwrap().starts_with("OK generation=2 docs=2"));
    handle.stop();
}

#[test]
fn snapshot_and_persist_require_a_data_dir() {
    let handle = Server::start(ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    assert!(client.request("SNAPSHOT").unwrap().starts_with("ERR durability disabled"));
    assert!(client.request("PERSIST").unwrap().starts_with("ERR durability disabled"));
    assert!(client.request("METRICS").unwrap().contains("durability=off"));
    handle.stop();
}

#[test]
fn corrupt_wal_tail_is_truncated_not_fatal() {
    let dir = scratch("torn");
    let sample = write_sample(&dir, "s.xml", "<r><a/></r>");
    let data_dir = dir.join("data");

    let (handle, mut client) = start(&data_dir);
    let id = load(&mut client, &sample);
    load(&mut client, &sample);
    handle.stop();

    // Tear the last record of the only WAL segment mid-payload.
    let wal = data_dir.join("wal-00000000.log");
    let bytes = std::fs::read(&wal).unwrap();
    std::fs::write(&wal, &bytes[..bytes.len() - 7]).unwrap();

    let (handle, mut client) = start(&data_dir);
    // First load survives, the torn second one is gone.
    assert!(client.request(&format!("QUERY {id} //a")).unwrap().starts_with("OK 1 "));
    let list = client.request("LIST").unwrap();
    assert!(list.starts_with("OK 1 "), "{list}");
    let metrics = client.request("METRICS").unwrap();
    assert!(metrics.contains("truncated_bytes="), "{metrics}");
    assert!(!metrics.contains("truncated_bytes=0 "), "{metrics}");
    handle.stop();
}

#[test]
fn corrupt_snapshot_quarantines_only_the_bad_document() {
    let dir = scratch("quarantine");
    let good = write_sample(&dir, "good.xml", "<g><ok/></g>");
    let bad = write_sample(&dir, "bad.xml", "<b><broken/></b>");
    let data_dir = dir.join("data");

    let (handle, mut client) = start(&data_dir);
    let good_id = load(&mut client, &good);
    let bad_id = load(&mut client, &bad);
    assert!(client.request("SNAPSHOT").unwrap().starts_with("OK generation=1"));
    handle.stop();

    // Flip a byte inside the second document's section: its CRC fails,
    // the first document's doesn't. The doc payload holds the XML text,
    // so target the tail of the file where doc 2 lives.
    let snap = data_dir.join("snapshot-00000001.snap");
    let mut bytes = std::fs::read(&snap).unwrap();
    let pos = bytes
        .windows(6)
        .rposition(|w| w == b"broken")
        .expect("doc payload not found in snapshot");
    bytes[pos] ^= 0x40;
    std::fs::write(&snap, &bytes).unwrap();

    let (handle, mut client) = start(&data_dir);
    assert!(client.request(&format!("QUERY {good_id} //ok")).unwrap().starts_with("OK 1 "));
    assert!(client
        .request(&format!("QUERY {bad_id} //broken"))
        .unwrap()
        .starts_with("ERR no document"));
    let metrics = client.request("METRICS").unwrap();
    assert!(metrics.contains("quarantined=1"), "{metrics}");
    handle.stop();
}
