//! End-to-end protocol tests: a real server on a loopback port, a real
//! client, every command exercised over the wire.

use ruid_service::{Client, Server, ServerConfig};

fn write_sample() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ruid-service-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sample.xml");
    std::fs::write(
        &path,
        "<catalog><book id=\"b1\"><title>A</title><price>35</price></book>\
         <book id=\"b2\"><title>B</title><price>20</price></book></catalog>",
    )
    .unwrap();
    path
}

fn start() -> (ruid_service::ServerHandle, Client) {
    let handle = Server::start(ServerConfig::default()).unwrap();
    let client = Client::connect(handle.addr()).unwrap();
    (handle, client)
}

#[test]
fn ping_and_unknown() {
    let (handle, mut client) = start();
    assert_eq!(client.request("PING").unwrap(), "OK pong");
    assert!(client.request("FROB 1").unwrap().starts_with("ERR unknown command"));
    assert!(client.request("LOAD").unwrap().starts_with("ERR usage:"));
    handle.stop();
}

#[test]
fn full_session_load_query_scan_stats() {
    let sample = write_sample();
    let (handle, mut client) = start();

    let resp = client.request(&format!("LOAD {}", sample.display())).unwrap();
    assert!(resp.starts_with("OK id="), "{resp}");
    let id: u64 = resp
        .split_whitespace()
        .find_map(|t| t.strip_prefix("id="))
        .unwrap()
        .parse()
        .unwrap();

    // LIST shows it.
    let resp = client.request("LIST").unwrap();
    assert!(resp.starts_with("OK 1 "), "{resp}");
    assert!(resp.contains(&format!("{id}=")), "{resp}");

    // QUERY on every engine returns the same two books.
    let mut answers = Vec::new();
    for engine in ["tree", "ruid", "indexed"] {
        let resp = client.request(&format!("QUERY {id} //book {engine}")).unwrap();
        assert!(resp.starts_with("OK 2 "), "engine {engine}: {resp}");
        answers.push(resp);
    }
    assert!(answers.windows(2).all(|w| w[0] == w[1]), "engines disagree: {answers:?}");

    // Predicate query with spaces in the XPath.
    let resp = client.request(&format!("QUERY {id} //book[price > 25]/title")).unwrap();
    assert!(resp.starts_with("OK 1 "), "{resp}");

    // LABEL matches QUERY's labels.
    let labels = client.request(&format!("LABEL {id} //book")).unwrap();
    assert_eq!(labels, answers[0]);

    // PARENT of the tree root is none; of anything else, resolvable.
    assert_eq!(client.request(&format!("PARENT {id} 1 1 true")).unwrap(), "OK none");
    let first_book = answers[0].split_whitespace().nth(2).unwrap().to_owned();
    let inner = first_book.trim_start_matches('(').trim_end_matches(')');
    let parts: Vec<&str> = inner.split(',').collect();
    let resp = client
        .request(&format!("PARENT {id} {} {} {}", parts[0], parts[1], parts[2]))
        .unwrap();
    assert!(resp.starts_with("OK ("), "{resp}");

    // GET the root subtree.
    let resp = client.request(&format!("GET {id} 1 1 true")).unwrap();
    assert!(resp.contains("<catalog>") && resp.contains("</catalog>"), "{resp}");

    // SCAN area 1 returns rows.
    let resp = client.request(&format!("SCAN {id} 1")).unwrap();
    assert!(resp.starts_with("OK "), "{resp}");
    let count: usize = resp.split_whitespace().nth(1).unwrap().parse().unwrap();
    assert!(count > 0, "{resp}");
    assert!(resp.contains("#elem#catalog"), "{resp}");

    // STATS reports the tree shape.
    let resp = client.request(&format!("STATS {id}")).unwrap();
    assert!(resp.contains("nodes=11"), "{resp}");
    assert!(resp.contains("elements=7"), "{resp}");

    // METRICS accounts for everything issued so far on this connection.
    let resp = client.request("METRICS").unwrap();
    assert!(resp.contains("connections="), "{resp}");
    assert!(resp.contains("QUERY=4/0/"), "{resp}");
    assert!(resp.contains("LOAD=1/0/"), "{resp}");

    // UNLOAD, then the document is gone.
    assert_eq!(client.request(&format!("UNLOAD {id}")).unwrap(), format!("OK unloaded {id}"));
    assert!(client.request(&format!("STATS {id}")).unwrap().starts_with("ERR no document"));

    handle.stop();
}

#[test]
fn errors_do_not_kill_the_connection() {
    let (handle, mut client) = start();
    assert!(client.request("STATS 999").unwrap().starts_with("ERR"));
    assert!(client.request("LOAD /nonexistent/never.xml").unwrap().starts_with("ERR"));
    assert!(client.request("QUERY 1 //a warp").unwrap().starts_with("ERR"));
    assert_eq!(client.request("PING").unwrap(), "OK pong");
    handle.stop();
}

#[test]
fn shutdown_command_stops_the_server() {
    let sample = write_sample();
    let (handle, mut client) = start();
    client.request(&format!("LOAD {}", sample.display())).unwrap();
    assert_eq!(client.request("SHUTDOWN").unwrap(), "OK bye");
    handle.join();
    // New connections are refused or dropped without a response.
    match Client::connect(handle_addr_after_join()) {
        Ok(_) | Err(_) => {} // nothing to assert: the listener is gone
    }
}

// After join() consumed the handle we cannot ask it for the address; bind
// a throwaway listener just to have a dead port to poke.
fn handle_addr_after_join() -> std::net::SocketAddr {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    listener.local_addr().unwrap()
}

#[test]
fn several_documents_across_shards() {
    let (handle, mut client) = start();
    let dir = std::env::temp_dir().join(format!("ruid-service-multi-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut ids = Vec::new();
    for i in 0..5 {
        let path = dir.join(format!("doc{i}.xml"));
        std::fs::write(&path, format!("<root><x n=\"{i}\"/><y/></root>")).unwrap();
        let resp = client.request(&format!("LOAD {}", path.display())).unwrap();
        assert!(resp.starts_with("OK id="), "{resp}");
        let id: u64 = resp
            .split_whitespace()
            .find_map(|t| t.strip_prefix("id="))
            .unwrap()
            .parse()
            .unwrap();
        ids.push(id);
    }
    for &id in &ids {
        let resp = client.request(&format!("QUERY {id} //x")).unwrap();
        assert!(resp.starts_with("OK 1 "), "doc {id}: {resp}");
    }
    let resp = client.request("LIST").unwrap();
    assert!(resp.starts_with("OK 5 "), "{resp}");
    handle.stop();
}
