//! Prometheus text-format exposition (version 0.0.4) of every service
//! counter, gauge and histogram.
//!
//! One renderer serves both transports: the `METRICS prom` verb (body
//! escaped onto the wire line) and the optional `serve --metrics-addr`
//! plain-HTTP endpoint. The per-command latency histograms come out as
//! cumulative `_bucket{le="..."}` series plus `_sum`/`_count`, exactly as
//! scrapers expect; everything else is flat counters/gauges with a
//! `command=`, `kind=` or `axis=` label where a family has members. All
//! values are read with relaxed loads — a scrape is a statistical
//! snapshot, not a transaction.

use par::PoolStats;
use plan::ResultCache;

use crate::catalog::Catalog;
use crate::metrics::{Histogram, Metrics, ValueHistogram, PLAN_OPERATORS, PROTOCOLS, UPDATE_OPS};
use crate::persist::Durability;
use crate::replication::ReplState;
use crate::trace::Tracer;

/// Everything a scrape can see. `metrics` is always present; the other
/// layers are optional because the server may run without durability, and
/// unit tests render partial contexts.
pub struct PromCtx<'a> {
    /// The per-command counters and histograms.
    pub metrics: &'a Metrics,
    /// The document catalog (MVCC generation gauge).
    pub catalog: Option<&'a Catalog>,
    /// The durability manager, when the server has a data dir.
    pub durability: Option<&'a Durability>,
    /// The request tracer.
    pub tracer: Option<&'a Tracer>,
    /// The worker pool's queue statistics.
    pub pool: Option<&'a PoolStats>,
    /// The planned-query result cache.
    pub plan_cache: Option<&'a ResultCache>,
    /// Replication role/lag gauges and shipping counters.
    pub repl: Option<&'a ReplState>,
}

fn family(out: &mut String, name: &str, kind: &str, help: &str) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
}

/// Nanoseconds as a seconds literal Prometheus accepts (Rust's `Display`
/// for `f64` never uses scientific notation).
fn secs(ns: u64) -> String {
    format!("{}", ns as f64 / 1e9)
}

fn histogram(out: &mut String, name: &str, label: &str, h: &Histogram) {
    let counts = h.bucket_counts();
    let mut cumulative = 0u64;
    for (i, count) in counts.iter().enumerate() {
        let Some(upper) = Histogram::bucket_upper_ns(i) else {
            // The open-ended final bucket is the `+Inf` line below.
            break;
        };
        cumulative += count;
        out.push_str(&format!(
            "{name}_bucket{{{label},le=\"{}\"}} {cumulative}\n",
            secs(upper)
        ));
    }
    let total = h.total();
    out.push_str(&format!("{name}_bucket{{{label},le=\"+Inf\"}} {total}\n"));
    out.push_str(&format!("{name}_sum{{{label}}} {}\n", secs(h.sum_ns())));
    out.push_str(&format!("{name}_count{{{label}}} {total}\n"));
}

/// Renders an unlabeled dimensionless [`ValueHistogram`] (pipeline
/// depths, batch sizes): power-of-two `le` bounds as plain integers.
fn value_histogram(out: &mut String, name: &str, h: &ValueHistogram) {
    let counts = h.bucket_counts();
    let mut cumulative = 0u64;
    for (i, count) in counts.iter().enumerate() {
        let Some(upper) = ValueHistogram::bucket_upper(i) else {
            break; // the open-ended final bucket is the `+Inf` line
        };
        cumulative += count;
        out.push_str(&format!("{name}_bucket{{le=\"{upper}\"}} {cumulative}\n"));
    }
    let total = h.total();
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {total}\n"));
    out.push_str(&format!("{name}_sum {}\n", h.sum()));
    out.push_str(&format!("{name}_count {total}\n"));
}

/// Renders the full exposition. Families with no possible members yet
/// (e.g. a command nobody called) are omitted, matching the wire
/// renderings; structural families (axes, robustness kinds) always list
/// every member so dashboards see explicit zeros.
pub fn render(ctx: &PromCtx<'_>) -> String {
    let m = ctx.metrics;
    let mut out = String::new();

    family(&mut out, "ruid_connections_total", "counter", "Connections accepted.");
    out.push_str(&format!("ruid_connections_total {}\n", m.connections()));

    let summaries = m.command_summaries();
    family(&mut out, "ruid_requests_total", "counter", "Requests handled, per command.");
    for s in &summaries {
        out.push_str(&format!(
            "ruid_requests_total{{command=\"{}\"}} {}\n",
            s.command.name().to_ascii_lowercase(),
            s.count
        ));
    }
    family(
        &mut out,
        "ruid_request_errors_total",
        "counter",
        "Requests answered ERR, per command.",
    );
    for s in &summaries {
        out.push_str(&format!(
            "ruid_request_errors_total{{command=\"{}\"}} {}\n",
            s.command.name().to_ascii_lowercase(),
            s.errors
        ));
    }
    family(
        &mut out,
        "ruid_request_duration_seconds",
        "histogram",
        "Request handling latency, per command.",
    );
    for s in &summaries {
        let label = format!("command=\"{}\"", s.command.name().to_ascii_lowercase());
        histogram(&mut out, "ruid_request_duration_seconds", &label, m.latency_of(s.command));
    }

    family(
        &mut out,
        "ruid_robustness_events_total",
        "counter",
        "Defensive-limit trips (shed, oversized, torn, deadlines).",
    );
    for (kind, value) in m.robustness_counters() {
        out.push_str(&format!("ruid_robustness_events_total{{kind=\"{kind}\"}} {value}\n"));
    }

    family(
        &mut out,
        "ruid_net_bytes_read_total",
        "counter",
        "Request bytes consumed off served connections (both protocols).",
    );
    out.push_str(&format!("ruid_net_bytes_read_total {}\n", m.net_bytes_read()));
    family(
        &mut out,
        "ruid_net_bytes_written_total",
        "counter",
        "Response bytes written to served connections (both protocols).",
    );
    out.push_str(&format!("ruid_net_bytes_written_total {}\n", m.net_bytes_written()));
    family(
        &mut out,
        "ruid_protocol_requests_total",
        "counter",
        "Requests received, per wire protocol front end.",
    );
    for (protocol, count) in PROTOCOLS.iter().zip(m.protocol_requests()) {
        out.push_str(&format!(
            "ruid_protocol_requests_total{{protocol=\"{protocol}\"}} {count}\n"
        ));
    }
    family(
        &mut out,
        "ruid_pipeline_depth",
        "histogram",
        "Complete binary frames served per connection service pass.",
    );
    value_histogram(&mut out, "ruid_pipeline_depth", m.pipeline_depth());
    family(
        &mut out,
        "ruid_batch_size",
        "histogram",
        "Sub-queries per MQUERY/MLABEL batch frame.",
    );
    value_histogram(&mut out, "ruid_batch_size", m.batch_size());

    family(
        &mut out,
        "ruid_xpath_steps_total",
        "counter",
        "XPath location steps evaluated, per axis.",
    );
    let steps = m.axis_steps();
    for axis in xpath::Axis::ALL {
        out.push_str(&format!(
            "ruid_xpath_steps_total{{axis=\"{}\"}} {}\n",
            axis.name(),
            steps[axis.index()]
        ));
    }

    family(
        &mut out,
        "ruid_plan_operators_total",
        "counter",
        "Physical plan operators executed by the planned engine, per kind.",
    );
    let plan_ops = m.plan_ops();
    for (op, count) in PLAN_OPERATORS.iter().zip(plan_ops) {
        out.push_str(&format!("ruid_plan_operators_total{{op=\"{op}\"}} {count}\n"));
    }

    family(
        &mut out,
        "ruid_updates_total",
        "counter",
        "Committed structural updates, per operation.",
    );
    let updates = m.updates();
    for (op, count) in UPDATE_OPS.iter().zip(updates) {
        out.push_str(&format!("ruid_updates_total{{op=\"{op}\"}} {count}\n"));
    }

    if let Some(catalog) = ctx.catalog {
        family(
            &mut out,
            "ruid_generation",
            "gauge",
            "Newest committed MVCC catalog generation.",
        );
        out.push_str(&format!("ruid_generation {}\n", catalog.generation()));
    }

    family(
        &mut out,
        "ruid_planner_duration_seconds",
        "histogram",
        "Plan-construction latency (excludes parsing and execution).",
    );
    histogram(
        &mut out,
        "ruid_planner_duration_seconds",
        "engine=\"planned\"",
        m.planner_time(),
    );

    if let Some(cache) = ctx.plan_cache {
        let s = cache.stats();
        family(&mut out, "ruid_plan_cache_hits_total", "counter", "Planned-query cache hits.");
        out.push_str(&format!("ruid_plan_cache_hits_total {}\n", s.hits));
        family(&mut out, "ruid_plan_cache_misses_total", "counter", "Planned-query cache misses.");
        out.push_str(&format!("ruid_plan_cache_misses_total {}\n", s.misses));
        family(
            &mut out,
            "ruid_plan_cache_invalidations_total",
            "counter",
            "Cached responses dropped by a WAL-generation mismatch or purge.",
        );
        out.push_str(&format!("ruid_plan_cache_invalidations_total {}\n", s.invalidations));
        family(&mut out, "ruid_plan_cache_evictions_total", "counter", "Cached responses evicted by capacity.");
        out.push_str(&format!("ruid_plan_cache_evictions_total {}\n", s.evictions));
        family(&mut out, "ruid_plan_cache_entries", "gauge", "Responses currently cached.");
        out.push_str(&format!("ruid_plan_cache_entries {}\n", s.entries));
    }

    if let Some(pool) = ctx.pool {
        family(&mut out, "ruid_pool_jobs_submitted_total", "counter", "Jobs accepted by the worker pool.");
        out.push_str(&format!("ruid_pool_jobs_submitted_total {}\n", pool.submitted()));
        family(&mut out, "ruid_pool_jobs_completed_total", "counter", "Jobs finished by the worker pool.");
        out.push_str(&format!("ruid_pool_jobs_completed_total {}\n", pool.completed()));
        family(&mut out, "ruid_pool_jobs_rejected_total", "counter", "Jobs refused by the bounded queue.");
        out.push_str(&format!("ruid_pool_jobs_rejected_total {}\n", pool.rejected()));
        family(&mut out, "ruid_pool_queue_depth", "gauge", "Jobs submitted but not yet finished.");
        out.push_str(&format!("ruid_pool_queue_depth {}\n", pool.queue_depth()));
        family(&mut out, "ruid_pool_queue_depth_max", "gauge", "High-water mark of the queue depth.");
        out.push_str(&format!("ruid_pool_queue_depth_max {}\n", pool.max_queue_depth()));
    }

    let exec = par::executor_stats();
    family(&mut out, "ruid_par_maps_total", "counter", "Parallel map invocations.");
    out.push_str(&format!("ruid_par_maps_total {}\n", exec.par_maps));
    family(&mut out, "ruid_par_items_total", "counter", "Items processed by parallel maps.");
    out.push_str(&format!("ruid_par_items_total {}\n", exec.par_items));
    family(&mut out, "ruid_par_steals_total", "counter", "Items claimed from another worker's range.");
    out.push_str(&format!("ruid_par_steals_total {}\n", exec.par_steals));

    if let Some(d) = ctx.durability {
        let s = d.stats();
        family(&mut out, "ruid_wal_generation", "gauge", "Current snapshot/WAL generation.");
        out.push_str(&format!("ruid_wal_generation {}\n", s.generation));
        family(&mut out, "ruid_wal_records_total", "counter", "Records appended to the live WAL segment.");
        out.push_str(&format!("ruid_wal_records_total {}\n", s.wal_records));
        family(&mut out, "ruid_wal_bytes_total", "counter", "Bytes appended to the live WAL segment.");
        out.push_str(&format!("ruid_wal_bytes_total {}\n", s.wal_bytes));
        family(&mut out, "ruid_wal_fsyncs_total", "counter", "fsyncs issued on the live WAL segment.");
        out.push_str(&format!("ruid_wal_fsyncs_total {}\n", s.wal_fsyncs));
        family(&mut out, "ruid_wal_unsynced_records", "gauge", "Appended records not yet fsynced.");
        out.push_str(&format!("ruid_wal_unsynced_records {}\n", s.wal_unsynced_records));
        family(&mut out, "ruid_wal_append_seconds_total", "counter", "Time spent appending WAL records.");
        out.push_str(&format!("ruid_wal_append_seconds_total {}\n", secs(s.wal_append_ns)));
        family(&mut out, "ruid_wal_fsync_seconds_total", "counter", "Time spent in WAL fsyncs.");
        out.push_str(&format!("ruid_wal_fsync_seconds_total {}\n", secs(s.wal_fsync_ns)));
        family(&mut out, "ruid_snapshots_total", "counter", "Snapshots installed by this process.");
        out.push_str(&format!("ruid_snapshots_total {}\n", s.snapshots));
        family(&mut out, "ruid_snapshot_seconds_total", "counter", "Time spent writing and installing snapshots.");
        out.push_str(&format!("ruid_snapshot_seconds_total {}\n", secs(s.snapshot_ns)));
    }

    if let Some(repl) = ctx.repl {
        let s = repl.sample();
        family(
            &mut out,
            "ruid_repl_role",
            "gauge",
            "Replication role of this process (1 on the active label).",
        );
        out.push_str(&format!(
            "ruid_repl_role{{role=\"leader\"}} {}\n",
            u8::from(s.is_leader)
        ));
        out.push_str(&format!(
            "ruid_repl_role{{role=\"follower\"}} {}\n",
            u8::from(!s.is_leader)
        ));
        family(
            &mut out,
            "ruid_repl_lag_seconds",
            "gauge",
            "Seconds this follower has continuously been behind the leader (0 when caught up or leading).",
        );
        out.push_str(&format!("ruid_repl_lag_seconds {}\n", s.lag_seconds));
        family(
            &mut out,
            "ruid_repl_lag_records",
            "gauge",
            "WAL records the leader has committed beyond this follower's applied position.",
        );
        out.push_str(&format!("ruid_repl_lag_records {}\n", s.lag_records));
        family(&mut out, "ruid_repl_chunks_shipped_total", "counter", "WAL tail chunks shipped to followers.");
        out.push_str(&format!("ruid_repl_chunks_shipped_total {}\n", s.chunks_shipped));
        family(&mut out, "ruid_repl_bytes_shipped_total", "counter", "WAL bytes shipped to followers.");
        out.push_str(&format!("ruid_repl_bytes_shipped_total {}\n", s.bytes_shipped));
        family(&mut out, "ruid_repl_snapshots_shipped_total", "counter", "Snapshot bootstraps served to followers.");
        out.push_str(&format!("ruid_repl_snapshots_shipped_total {}\n", s.snapshots_shipped));
        family(&mut out, "ruid_repl_acks_total", "counter", "Acknowledgements received from followers.");
        out.push_str(&format!("ruid_repl_acks_total {}\n", s.acks_received));
        family(&mut out, "ruid_repl_followers", "gauge", "Followers currently attached to this leader.");
        out.push_str(&format!("ruid_repl_followers {}\n", s.followers));
        family(&mut out, "ruid_repl_records_applied_total", "counter", "Shipped WAL records applied by this follower.");
        out.push_str(&format!("ruid_repl_records_applied_total {}\n", s.records_applied));
        family(&mut out, "ruid_repl_bootstraps_total", "counter", "Snapshot bootstraps this follower performed.");
        out.push_str(&format!("ruid_repl_bootstraps_total {}\n", s.bootstraps));
        family(&mut out, "ruid_repl_reconnects_total", "counter", "Leader connections re-established after a transport error.");
        out.push_str(&format!("ruid_repl_reconnects_total {}\n", s.reconnects));
        family(&mut out, "ruid_repl_backoff_waits_total", "counter", "Backoff sleeps taken between reconnect attempts.");
        out.push_str(&format!("ruid_repl_backoff_waits_total {}\n", s.backoff_waits));
        family(&mut out, "ruid_repl_refusals_total", "counter", "Leader refusals (stream discontinuity or rotation) forcing a re-bootstrap.");
        out.push_str(&format!("ruid_repl_refusals_total {}\n", s.refusals));
        family(&mut out, "ruid_repl_quarantined_total", "counter", "Documents quarantined after a shipped record failed to apply.");
        out.push_str(&format!("ruid_repl_quarantined_total {}\n", s.quarantined));
        family(&mut out, "ruid_repl_promotions_total", "counter", "Follower-to-leader promotions completed by this process.");
        out.push_str(&format!("ruid_repl_promotions_total {}\n", s.promotions));
    }

    family(
        &mut out,
        "ruid_client_retries_total",
        "counter",
        "Client-side retries after BUSY or a refused/dropped connection (process-wide).",
    );
    out.push_str(&format!(
        "ruid_client_retries_total {}\n",
        crate::client::client_retries_total()
    ));

    if let Some(t) = ctx.tracer {
        family(&mut out, "ruid_trace_enabled", "gauge", "Whether per-request tracing is on.");
        out.push_str(&format!("ruid_trace_enabled {}\n", u8::from(t.enabled())));
        family(&mut out, "ruid_slowlog_entries", "gauge", "Entries currently in the slow-query ring.");
        out.push_str(&format!("ruid_slowlog_entries {}\n", t.entries()));
        family(&mut out, "ruid_slowlog_captured_total", "counter", "Slow requests captured since start.");
        out.push_str(&format!("ruid_slowlog_captured_total {}\n", t.captured()));
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Command;
    use std::time::Duration;

    fn ctx_metrics_only(m: &Metrics) -> String {
        render(&PromCtx {
            metrics: m,
            catalog: None,
            durability: None,
            tracer: None,
            pool: None,
            plan_cache: None,
            repl: None,
        })
    }

    #[test]
    fn exposition_has_cumulative_monotone_buckets() {
        let m = Metrics::new();
        m.record(Command::Query, false, Duration::from_micros(3));
        m.record(Command::Query, false, Duration::from_micros(700));
        m.record(Command::Query, true, Duration::from_millis(12));
        let body = ctx_metrics_only(&m);
        assert!(body.contains("ruid_requests_total{command=\"query\"} 3"), "{body}");
        assert!(body.contains("ruid_request_errors_total{command=\"query\"} 1"), "{body}");
        // Cumulative buckets never decrease and end at the count.
        let mut last = 0u64;
        let mut bucket_lines = 0;
        for line in body.lines() {
            if let Some(rest) = line.strip_prefix("ruid_request_duration_seconds_bucket{command=\"query\",le=\"") {
                let v: u64 = rest.split_whitespace().last().unwrap().parse().unwrap();
                assert!(v >= last, "bucket shrank: {line}");
                last = v;
                bucket_lines += 1;
            }
        }
        assert_eq!(bucket_lines, Histogram::BUCKET_COUNT, "one line per bound plus +Inf");
        assert_eq!(last, 3, "+Inf bucket equals the sample count");
        assert!(
            body.contains("ruid_request_duration_seconds_count{command=\"query\"} 3"),
            "{body}"
        );
    }

    #[test]
    fn exposition_lists_every_axis_and_robustness_kind() {
        let m = Metrics::new();
        let body = ctx_metrics_only(&m);
        for axis in xpath::Axis::ALL {
            assert!(
                body.contains(&format!("ruid_xpath_steps_total{{axis=\"{}\"}} 0", axis.name())),
                "missing axis {} in {body}",
                axis.name()
            );
        }
        for kind in ["shed", "oversized", "torn", "deadline_read", "deadline_write", "deadline_request"] {
            assert!(
                body.contains(&format!("ruid_robustness_events_total{{kind=\"{kind}\"}} 0")),
                "missing kind {kind}"
            );
        }
        // Executor counters are process-wide and always present.
        assert!(body.contains("ruid_par_maps_total"), "{body}");
    }

    #[test]
    fn le_bounds_are_plain_decimals() {
        let m = Metrics::new();
        m.record(Command::Ping, false, Duration::from_nanos(1));
        let body = ctx_metrics_only(&m);
        assert!(body.contains("le=\"0.000000002\""), "{body}");
        assert!(!body.contains('e') || !body.contains("le=\"2e"), "no scientific notation");
        // Every HELP line is paired with a TYPE line.
        let helps = body.lines().filter(|l| l.starts_with("# HELP")).count();
        let types = body.lines().filter(|l| l.starts_with("# TYPE")).count();
        assert_eq!(helps, types);
    }

    #[test]
    fn tracer_section_renders_when_present() {
        let m = Metrics::new();
        let t = Tracer::new(8);
        t.set_threshold_ms(0);
        let body = render(&PromCtx {
            metrics: &m,
            catalog: None,
            durability: None,
            tracer: Some(&t),
            pool: None,
            plan_cache: None,
            repl: None,
        });
        assert!(body.contains("ruid_trace_enabled 1"), "{body}");
        assert!(body.contains("ruid_slowlog_captured_total 0"), "{body}");
    }

    #[test]
    fn replication_families_render_for_both_roles() {
        let m = Metrics::new();
        let leader = ReplState::new_leader();
        let body = render(&PromCtx {
            metrics: &m,
            catalog: None,
            durability: None,
            tracer: None,
            pool: None,
            plan_cache: None,
            repl: Some(&leader),
        });
        assert!(body.contains("ruid_repl_role{role=\"leader\"} 1"), "{body}");
        assert!(body.contains("ruid_repl_role{role=\"follower\"} 0"), "{body}");
        assert!(body.contains("ruid_repl_lag_seconds 0"), "{body}");
        assert!(body.contains("ruid_repl_lag_records 0"), "{body}");
        assert!(body.contains("ruid_repl_chunks_shipped_total 0"), "{body}");
        assert!(body.contains("ruid_repl_records_applied_total 0"), "{body}");
        assert!(body.contains("ruid_repl_reconnects_total 0"), "{body}");
        assert!(body.contains("ruid_repl_backoff_waits_total 0"), "{body}");
        assert!(body.contains("ruid_client_retries_total"), "{body}");

        let follower = ReplState::new_follower("127.0.0.1:1".into());
        follower.note_applied();
        follower.note_applied();
        follower.note_reconnect();
        follower.set_lag(7);
        let body = render(&PromCtx {
            metrics: &m,
            catalog: None,
            durability: None,
            tracer: None,
            pool: None,
            plan_cache: None,
            repl: Some(&follower),
        });
        assert!(body.contains("ruid_repl_role{role=\"leader\"} 0"), "{body}");
        assert!(body.contains("ruid_repl_role{role=\"follower\"} 1"), "{body}");
        assert!(body.contains("ruid_repl_lag_records 7"), "{body}");
        assert!(body.contains("ruid_repl_records_applied_total 2"), "{body}");
        assert!(body.contains("ruid_repl_reconnects_total 1"), "{body}");
        // Once caught up the continuous-behind clock resets to zero.
        follower.set_lag(0);
        let body = render(&PromCtx {
            metrics: &m,
            catalog: None,
            durability: None,
            tracer: None,
            pool: None,
            plan_cache: None,
            repl: Some(&follower),
        });
        assert!(body.contains("ruid_repl_lag_seconds 0\n"), "{body}");
    }

    #[test]
    fn wire_layer_families_render() {
        use crate::metrics::Protocol;
        let m = Metrics::new();
        m.add_net_read(120);
        m.add_net_written(456);
        m.record_protocol_request(Protocol::Text);
        m.record_protocol_request(Protocol::Binary);
        m.record_protocol_request(Protocol::Binary);
        m.record_pipeline_depth(1);
        m.record_pipeline_depth(32);
        m.record_batch_size(64);
        let body = ctx_metrics_only(&m);
        assert!(body.contains("ruid_net_bytes_read_total 120"), "{body}");
        assert!(body.contains("ruid_net_bytes_written_total 456"), "{body}");
        assert!(body.contains("ruid_protocol_requests_total{protocol=\"text\"} 1"), "{body}");
        assert!(body.contains("ruid_protocol_requests_total{protocol=\"binary\"} 2"), "{body}");
        // Value histograms: integer le bounds, cumulative counts.
        assert!(body.contains("ruid_pipeline_depth_bucket{le=\"1\"} 1"), "{body}");
        assert!(body.contains("ruid_pipeline_depth_bucket{le=\"32\"} 2"), "{body}");
        assert!(body.contains("ruid_pipeline_depth_bucket{le=\"+Inf\"} 2"), "{body}");
        assert!(body.contains("ruid_pipeline_depth_sum 33"), "{body}");
        assert!(body.contains("ruid_pipeline_depth_count 2"), "{body}");
        assert!(body.contains("ruid_batch_size_bucket{le=\"64\"} 1"), "{body}");
        assert!(body.contains("ruid_batch_size_sum 64"), "{body}");
    }

    #[test]
    fn plan_families_render() {
        let m = Metrics::new();
        m.record_plan_ops([5, 1, 2, 3]);
        m.record_planner_time(Duration::from_micros(7));
        let cache = plan::ResultCache::new(4);
        cache.insert(1, "//a", 1, "OK 0".into());
        assert!(cache.lookup(1, "//a", 1).is_some());
        assert!(cache.lookup(1, "//a", 2).is_none(), "stale generation");
        let body = render(&PromCtx {
            metrics: &m,
            catalog: None,
            durability: None,
            tracer: None,
            pool: None,
            plan_cache: Some(&cache),
            repl: None,
        });
        // Every operator kind is listed, even untouched ones.
        assert!(body.contains("ruid_plan_operators_total{op=\"scan\"} 5"), "{body}");
        assert!(body.contains("ruid_plan_operators_total{op=\"child-join\"} 1"), "{body}");
        assert!(body.contains("ruid_plan_operators_total{op=\"containment-join\"} 2"), "{body}");
        assert!(body.contains("ruid_plan_operators_total{op=\"fallback-step\"} 3"), "{body}");
        assert!(body.contains("ruid_planner_duration_seconds_count{engine=\"planned\"} 1"), "{body}");
        assert!(body.contains("ruid_plan_cache_hits_total 1"), "{body}");
        assert!(body.contains("ruid_plan_cache_misses_total 1"), "{body}");
        assert!(body.contains("ruid_plan_cache_invalidations_total 1"), "{body}");
        assert!(body.contains("ruid_plan_cache_entries 0"), "{body}");
    }
}
