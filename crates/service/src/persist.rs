//! The service's durability manager: one write-ahead log for catalog
//! mutations plus snapshot rotation, layered on the `durable` crate.
//!
//! Invariant: the WAL and the catalog agree because every durable
//! mutation runs under the manager's mutex — the record is appended
//! *before* the catalog changes, and a snapshot freezes the catalog and
//! rotates to a fresh segment inside the same critical section. Readers
//! (queries) never touch the mutex.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use durable::{
    recover, snapshot_file_name, wal_file_name, write_snapshot, DocState, DocView, FsyncPolicy,
    WalOp, WalWriter,
};

use crate::catalog::{Catalog, DocId, LoadedDoc};

/// What startup recovery found, frozen for metrics reporting.
#[derive(Debug, Clone, Default)]
pub struct RecoverySummary {
    /// Generation of the snapshot the catalog was restored from.
    pub snapshot_generation: Option<u64>,
    /// Snapshot files skipped for header/directory damage.
    pub snapshots_skipped: u64,
    /// Documents restored from the snapshot.
    pub snapshot_docs: u64,
    /// WAL records replayed.
    pub replayed: u64,
    /// Torn-tail bytes truncated from WAL segments.
    pub truncated_bytes: u64,
    /// WAL segments skipped because the generation chain below them broke.
    pub orphaned_segments: u64,
    /// Documents dropped during recovery (checksum or replay failure).
    pub quarantined: Vec<(u64, String)>,
}

struct Inner {
    wal: WalWriter,
    generation: u64,
}

/// The per-server durability manager (absent when `--data-dir` is not
/// given): owns the live WAL segment and installs snapshots.
pub struct Durability {
    dir: PathBuf,
    policy: FsyncPolicy,
    inner: Mutex<Inner>,
    snapshots: AtomicU64,
    snapshot_ns: AtomicU64,
    recovery: RecoverySummary,
}

/// A consistent point-in-time view of the durability counters, for
/// Prometheus exposition.
#[derive(Debug, Clone, Copy)]
pub struct DurabilityStats {
    /// Current snapshot/WAL generation.
    pub generation: u64,
    /// Records appended to the live WAL segment.
    pub wal_records: u64,
    /// Bytes appended to the live WAL segment.
    pub wal_bytes: u64,
    /// fsyncs issued on the live WAL segment.
    pub wal_fsyncs: u64,
    /// Records appended since the last fsync (lost if the process dies).
    pub wal_unsynced_records: u64,
    /// Nanoseconds spent in WAL appends.
    pub wal_append_ns: u64,
    /// Nanoseconds spent in WAL fsyncs.
    pub wal_fsync_ns: u64,
    /// Snapshots installed by this process.
    pub snapshots: u64,
    /// Nanoseconds spent writing + installing snapshots.
    pub snapshot_ns: u64,
}

impl Durability {
    /// Recovers the catalog persisted in `dir` (created if missing),
    /// resumes the WAL at its valid tail, and returns the manager plus
    /// the recovered documents for the caller to install.
    pub fn open(
        dir: &Path,
        policy: FsyncPolicy,
    ) -> std::io::Result<(Durability, Vec<DocState>, u64)> {
        let recovered = recover(dir)?;
        let wal = WalWriter::resume(
            dir,
            recovered.generation,
            recovered.wal_valid_bytes,
            recovered.wal_next_seq,
            policy,
        )?;
        let r = &recovered.report;
        let durability = Durability {
            dir: dir.to_path_buf(),
            policy,
            inner: Mutex::new(Inner { wal, generation: recovered.generation }),
            snapshots: AtomicU64::new(0),
            snapshot_ns: AtomicU64::new(0),
            recovery: RecoverySummary {
                snapshot_generation: r.snapshot_generation,
                snapshots_skipped: r.snapshots_skipped,
                snapshot_docs: r.snapshot_docs,
                replayed: r.replayed,
                truncated_bytes: r.truncated_bytes,
                orphaned_segments: r.orphaned_segments,
                quarantined: r.quarantined.clone(),
            },
        };
        Ok((durability, recovered.docs, recovered.next_doc_id))
    }

    /// Appends `op` to the WAL and, only if the append succeeds, runs
    /// `apply` (the catalog mutation) inside the same critical section —
    /// so a snapshot can never observe a catalog state whose WAL record
    /// landed in an already-rotated segment.
    pub fn log_with<R>(&self, op: &WalOp, apply: impl FnOnce() -> R) -> Result<R, String> {
        let mut inner = self.inner.lock().unwrap();
        inner.wal.append(op).map_err(|e| format!("wal append failed: {e}"))?;
        Ok(apply())
    }

    /// Arms a deterministic I/O fault plan on the live WAL writer (test
    /// hook for the crash-mid-commit sweep; fault indices count appends
    /// from this call on). A writer that took a torn write must not be
    /// reused — kill the server and recover, exactly like a real crash.
    #[doc(hidden)]
    pub fn arm_wal_faults(&self, plan: durable::IoFaultPlan) {
        self.inner.lock().unwrap().wal.set_fault_plan(plan);
    }

    /// Forces the WAL to stable storage (the `PERSIST` verb). Returns the
    /// records and bytes now durable.
    pub fn persist(&self) -> Result<(u64, u64), String> {
        let mut inner = self.inner.lock().unwrap();
        inner.wal.sync().map_err(|e| format!("wal fsync failed: {e}"))?;
        Ok((inner.wal.records(), inner.wal.bytes()))
    }

    /// Writes a snapshot of the whole catalog as generation `g+1`,
    /// atomically installs it, starts the paired fresh WAL segment, and
    /// removes files older than the previous generation (one older
    /// snapshot is kept as a fallback base). Returns `(generation, docs)`.
    pub fn snapshot(&self, catalog: &Catalog) -> Result<(u64, usize), String> {
        let started = std::time::Instant::now();
        let mut inner = self.inner.lock().unwrap();
        let new_gen = inner.generation + 1;
        let entries: Vec<(DocId, Arc<LoadedDoc>)> = catalog.snapshot_docs();
        let views: Vec<DocView<'_>> = entries
            .iter()
            .map(|(id, d)| DocView {
                id: *id,
                path: &d.path,
                config: *d.scheme.config(),
                with_store: d.store.is_some(),
                doc: &d.doc,
                scheme: &d.scheme,
            })
            .collect();
        write_snapshot(&self.dir, new_gen, &views)
            .map_err(|e| format!("snapshot write failed: {e}"))?;
        inner.wal = WalWriter::create(&self.dir, new_gen, self.policy)
            .map_err(|e| format!("wal rotation failed: {e}"))?;
        let old_gen = inner.generation;
        inner.generation = new_gen;
        drop(inner);
        self.snapshots.fetch_add(1, Ordering::Relaxed);
        self.snapshot_ns.fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        // Best-effort cleanup below the fallback generation; leftover
        // files only cost disk, never correctness (recovery ignores
        // segments with a broken chain and prefers newer snapshots).
        for g in (0..old_gen).rev().take(8) {
            let _ = std::fs::remove_file(self.dir.join(snapshot_file_name(g)));
            let _ = std::fs::remove_file(self.dir.join(wal_file_name(g)));
        }
        Ok((new_gen, views.len()))
    }

    /// The data directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured fsync policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// The current snapshot/WAL generation.
    pub fn generation(&self) -> u64 {
        self.inner.lock().unwrap().generation
    }

    /// The leader's WAL coordinates for replication, read atomically
    /// under the manager's mutex: the live segment generation, the next
    /// sequence number, and the committed byte watermark. A `REPL TAIL`
    /// answer must never ship bytes past this watermark — appends that
    /// race the read are simply not committed yet from the follower's
    /// point of view.
    pub fn wal_position(&self) -> (u64, u64, u64) {
        let inner = self.inner.lock().unwrap();
        (inner.generation, inner.wal.next_seq(), inner.wal.bytes())
    }

    /// Newest installed snapshot generation on disk, if any — what a
    /// bootstrapping follower should start from.
    pub fn newest_snapshot(&self) -> Option<u64> {
        let mut newest = None;
        if let Ok(entries) = std::fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                if let Some(name) = entry.file_name().to_str() {
                    if let Some(g) = durable::snapshot_generation(name) {
                        newest = newest.max(Some(g));
                    }
                }
            }
        }
        newest
    }

    /// Snapshots installed by this process.
    pub fn snapshots(&self) -> u64 {
        self.snapshots.load(Ordering::Relaxed)
    }

    /// What startup recovery found.
    pub fn recovery(&self) -> &RecoverySummary {
        &self.recovery
    }

    /// A consistent snapshot of the durability counters (one lock).
    pub fn stats(&self) -> DurabilityStats {
        let inner = self.inner.lock().unwrap();
        DurabilityStats {
            generation: inner.generation,
            wal_records: inner.wal.records(),
            wal_bytes: inner.wal.bytes(),
            wal_fsyncs: inner.wal.fsyncs(),
            wal_unsynced_records: u64::from(inner.wal.unsynced_records()),
            wal_append_ns: inner.wal.append_ns(),
            wal_fsync_ns: inner.wal.fsync_ns(),
            snapshots: self.snapshots.load(Ordering::Relaxed),
            snapshot_ns: self.snapshot_ns.load(Ordering::Relaxed),
        }
    }

    /// The durability segment of the `METRICS` line:
    /// `durability=on generation=.. wal_records=.. ... quarantined=..`.
    pub fn render_line(&self) -> String {
        let inner = self.inner.lock().unwrap();
        format!(
            "durability=on fsync={} generation={} wal_records={} wal_bytes={} wal_fsyncs={} \
             wal_unsynced={} snapshots={} recovered_docs={} replayed={} truncated_bytes={} \
             orphaned_segments={} snapshots_skipped={} quarantined={}",
            self.policy,
            inner.generation,
            inner.wal.records(),
            inner.wal.bytes(),
            inner.wal.fsyncs(),
            inner.wal.unsynced_records(),
            self.snapshots.load(Ordering::Relaxed),
            self.recovery.snapshot_docs,
            self.recovery.replayed,
            self.recovery.truncated_bytes,
            self.recovery.orphaned_segments,
            self.recovery.snapshots_skipped,
            self.recovery.quarantined.len(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruid_core::PartitionConfig;

    fn test_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("persist-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn load_op(id: u64, xml: &str) -> WalOp {
        WalOp::Load {
            doc_id: id,
            path: format!("doc{id}.xml"),
            config: PartitionConfig::by_depth(2),
            with_store: true,
            xml: xml.into(),
        }
    }

    #[test]
    fn log_snapshot_reopen_round_trip() {
        let dir = test_dir("round_trip");
        let catalog = Catalog::new(4);
        {
            let (d, docs, next) = Durability::open(&dir, FsyncPolicy::Always).unwrap();
            assert!(docs.is_empty());
            assert_eq!(next, 1);
            let id = catalog.reserve_id();
            let loaded =
                LoadedDoc::build("doc1.xml", "<a><b/><c>t</c></a>", 2, true).unwrap();
            d.log_with(&load_op(id, "<a><b/><c>t</c></a>"), || {
                catalog.insert_with_id(id, loaded)
            })
            .unwrap();
            let (generation, count) = d.snapshot(&catalog).unwrap();
            assert_eq!((generation, count), (1, 1));
            assert_eq!(d.generation(), 1);
            assert_eq!(d.snapshots(), 1);
            let line = d.render_line();
            assert!(line.contains("durability=on"), "{line}");
            assert!(line.contains("generation=1"), "{line}");
        }
        // Reopen: the snapshot alone restores the document.
        let (d, docs, next) = Durability::open(&dir, FsyncPolicy::Always).unwrap();
        assert_eq!(docs.len(), 1);
        assert_eq!(docs[0].id, 1);
        assert!(docs[0].with_store);
        assert_eq!(next, 2);
        assert_eq!(d.recovery().snapshot_generation, Some(1));
        assert_eq!(d.generation(), 1);
    }

    #[test]
    fn wal_tail_survives_without_snapshot() {
        let dir = test_dir("wal_tail");
        {
            let (d, _, _) = Durability::open(&dir, FsyncPolicy::Always).unwrap();
            d.log_with(&load_op(1, "<x><y/></x>"), || ()).unwrap();
            d.log_with(&WalOp::Unload { doc_id: 1 }, || ()).unwrap();
            d.log_with(&load_op(2, "<z/>"), || ()).unwrap();
        }
        let (d, docs, next) = Durability::open(&dir, FsyncPolicy::Never).unwrap();
        assert_eq!(docs.len(), 1);
        assert_eq!(docs[0].id, 2);
        assert_eq!(next, 3);
        assert_eq!(d.recovery().replayed, 3);
        assert_eq!(d.recovery().snapshot_generation, None);
    }
}
