//! A minimal blocking client for the line protocol, used by the CLI's
//! `client` subcommand and by the test suite.
//!
//! The client can carry a [`FaultPlan`]: faults fire at the request
//! indices the plan names, simulating a hostile or broken peer — a torn
//! request (partial line, then the socket severed), a slow-loris pause
//! mid-line, or an abrupt EOF. That is how the chaos tests drive the
//! server's deadlines and framing limits from the outside.

use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

use crate::fault::{Fault, FaultPlan};

/// One connection to a running service.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    plan: Option<Arc<FaultPlan>>,
    sent: u64,
}

impl Client {
    /// Connects to `addr` (e.g. `"127.0.0.1:7070"` or a `SocketAddr`).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer, plan: None, sent: 0 })
    }

    /// Connects with a fault plan: each [`Client::request`] consumes one
    /// request index, and the plan's fault (if any) fires on it.
    pub fn connect_with_faults<A: ToSocketAddrs>(
        addr: A,
        plan: Arc<FaultPlan>,
    ) -> std::io::Result<Client> {
        let mut client = Client::connect(addr)?;
        client.plan = Some(plan);
        Ok(client)
    }

    /// Caps how long [`Client::request`] waits for a response line.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Requests sent (or faulted) so far — the next request's fault index.
    pub fn requests_sent(&self) -> u64 {
        self.sent
    }

    /// Sends one request line and reads the one response line.
    ///
    /// Returns `UnexpectedEof` if the server closed the connection, and
    /// `ConnectionAborted` when an injected client-side fault severed it.
    pub fn request(&mut self, line: &str) -> std::io::Result<String> {
        let index = self.sent;
        self.sent += 1;
        let fault = self.plan.as_ref().and_then(|p| p.fault_at(index)).cloned();
        let mut message = line.trim_end().to_owned();
        message.push('\n');
        match fault {
            Some(Fault::EarlyEof) => {
                // Sever without sending anything.
                let _ = self.writer.shutdown(Shutdown::Both);
                return Err(std::io::Error::new(
                    std::io::ErrorKind::ConnectionAborted,
                    "injected fault: early EOF",
                ));
            }
            Some(Fault::TornWrite { bytes }) => {
                // Never let the terminator out: the server must see a
                // partial line followed by EOF.
                let n = bytes.min(message.len().saturating_sub(1));
                self.writer.write_all(&message.as_bytes()[..n])?;
                self.writer.flush()?;
                let _ = self.writer.shutdown(Shutdown::Both);
                return Err(std::io::Error::new(
                    std::io::ErrorKind::ConnectionAborted,
                    "injected fault: torn write",
                ));
            }
            Some(Fault::DelayMs { ms }) => {
                // Slow-loris: half the line, a pause, then the rest. With
                // a pause beyond the server's read deadline the response
                // is an ERR (or the connection dies) — the caller decides
                // what to assert.
                let half = message.len() / 2;
                self.writer.write_all(&message.as_bytes()[..half])?;
                self.writer.flush()?;
                std::thread::sleep(Duration::from_millis(ms));
                self.writer.write_all(&message.as_bytes()[half..])?;
                self.writer.flush()?;
            }
            // Server-side-only faults are a no-op on the client.
            Some(Fault::ForceBusy | Fault::StallHandler { .. }) | None => {
                self.writer.write_all(message.as_bytes())?;
                self.writer.flush()?;
            }
        }
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(response.trim_end_matches(['\r', '\n']).to_owned())
    }
}
