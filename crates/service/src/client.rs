//! A minimal blocking client for the line protocol, used by the CLI's
//! `client` subcommand and by the test suite.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One connection to a running service.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to `addr` (e.g. `"127.0.0.1:7070"` or a `SocketAddr`).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer })
    }

    /// Caps how long [`Client::request`] waits for a response line.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Sends one request line and reads the one response line.
    ///
    /// Returns `UnexpectedEof` if the server closed the connection.
    pub fn request(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.trim_end().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(response.trim_end_matches(['\r', '\n']).to_owned())
    }
}
