//! Blocking clients for both wire protocols, used by the CLI's `client`
//! subcommand and by the test suite: [`Client`] speaks the line protocol,
//! [`BinaryClient`] the length-prefixed binary frames (with pipelining —
//! issue K requests, then match the replies by id as they arrive, in
//! whatever order the server finished them).
//!
//! Either client can carry a [`FaultPlan`]: faults fire at the request
//! indices the plan names, simulating a hostile or broken peer — a torn
//! request (a partial line or frame, then the socket severed), a
//! slow-loris pause mid-transfer, a forged oversized frame header, or an
//! abrupt EOF. That is how the chaos tests drive the server's deadlines
//! and framing limits from the outside.

use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use repl::Backoff;

use crate::fault::{Fault, FaultPlan};
use crate::proto::Engine;
use crate::wire::{self, Decoded, ResponseFrame, WireRequest, WireResponse};

/// Process-wide retry counter across every in-process [`Client`]:
/// reconnects after a refused connect plus `BUSY` resends. Surfaced as
/// `ruid_client_retries_total` in the Prometheus exposition.
static CLIENT_RETRIES: AtomicU64 = AtomicU64::new(0);

/// Total retries in-process clients have performed (see
/// [`RetryPolicy`]).
pub fn client_retries_total() -> u64 {
    CLIENT_RETRIES.load(Ordering::Relaxed)
}

/// Bounded exponential backoff with jitter for the client retry
/// helpers. `BUSY` and a refused connect are the *retryable* outcomes:
/// both mean "nothing was executed, try again later".
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts (the first try included); at least 1.
    pub max_attempts: u32,
    /// First delay, in milliseconds.
    pub base_ms: u64,
    /// Delay cap, in milliseconds.
    pub max_ms: u64,
    /// Jitter seed — fix it for reproducible test schedules.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy { max_attempts: 5, base_ms: 20, max_ms: 500, seed: 0x5eed }
    }
}

/// One connection to a running service.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Peer address, kept so the retry helper can reconnect after the
    /// server shed this connection.
    addr: Option<SocketAddr>,
    plan: Option<Arc<FaultPlan>>,
    sent: u64,
}

impl Client {
    /// Connects to `addr` (e.g. `"127.0.0.1:7070"` or a `SocketAddr`).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let addr = stream.peer_addr().ok();
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer, addr, plan: None, sent: 0 })
    }

    /// Connects with bounded exponential backoff + jitter on a refused
    /// connection (the server not up yet, or restarting). Every retry
    /// bumps the process-wide [`client_retries_total`] counter; any
    /// other error is returned immediately.
    pub fn connect_with_retry<A: ToSocketAddrs>(
        addr: A,
        policy: RetryPolicy,
    ) -> std::io::Result<Client> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let mut backoff = Backoff::new(policy.base_ms, policy.max_ms, policy.seed);
        let mut attempt = 0u32;
        loop {
            match Client::connect(&addrs[..]) {
                Ok(client) => return Ok(client),
                Err(e)
                    if e.kind() == ErrorKind::ConnectionRefused
                        && attempt + 1 < policy.max_attempts.max(1) =>
                {
                    attempt += 1;
                    CLIENT_RETRIES.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(backoff.next_delay());
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Connects with a fault plan: each [`Client::request`] consumes one
    /// request index, and the plan's fault (if any) fires on it.
    pub fn connect_with_faults<A: ToSocketAddrs>(
        addr: A,
        plan: Arc<FaultPlan>,
    ) -> std::io::Result<Client> {
        let mut client = Client::connect(addr)?;
        client.plan = Some(plan);
        Ok(client)
    }

    /// Caps how long [`Client::request`] waits for a response line.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Requests sent (or faulted) so far — the next request's fault index.
    pub fn requests_sent(&self) -> u64 {
        self.sent
    }

    /// Sends one request line and reads the one response line.
    ///
    /// Returns `UnexpectedEof` if the server closed the connection, and
    /// `ConnectionAborted` when an injected client-side fault severed it.
    pub fn request(&mut self, line: &str) -> std::io::Result<String> {
        let index = self.sent;
        self.sent += 1;
        let fault = self.plan.as_ref().and_then(|p| p.fault_at(index)).cloned();
        let mut message = line.trim_end().to_owned();
        message.push('\n');
        match fault {
            Some(Fault::EarlyEof) => {
                // Sever without sending anything.
                let _ = self.writer.shutdown(Shutdown::Both);
                return Err(std::io::Error::new(
                    std::io::ErrorKind::ConnectionAborted,
                    "injected fault: early EOF",
                ));
            }
            Some(Fault::TornWrite { bytes }) => {
                // Never let the terminator out: the server must see a
                // partial line followed by EOF.
                let n = bytes.min(message.len().saturating_sub(1));
                self.writer.write_all(&message.as_bytes()[..n])?;
                self.writer.flush()?;
                let _ = self.writer.shutdown(Shutdown::Both);
                return Err(std::io::Error::new(
                    std::io::ErrorKind::ConnectionAborted,
                    "injected fault: torn write",
                ));
            }
            Some(Fault::DelayMs { ms }) => {
                // Slow-loris: half the line, a pause, then the rest. With
                // a pause beyond the server's read deadline the response
                // is an ERR (or the connection dies) — the caller decides
                // what to assert.
                let half = message.len() / 2;
                self.writer.write_all(&message.as_bytes()[..half])?;
                self.writer.flush()?;
                std::thread::sleep(Duration::from_millis(ms));
                self.writer.write_all(&message.as_bytes()[half..])?;
                self.writer.flush()?;
            }
            // Server-side-only faults (and the binary-only oversized
            // frame) are a no-op on the text client.
            Some(
                Fault::ForceBusy
                | Fault::StallHandler { .. }
                | Fault::OversizedFrame { .. }
                | Fault::ForgeSeq,
            )
            | None => {
                self.writer.write_all(message.as_bytes())?;
                self.writer.flush()?;
            }
        }
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(response.trim_end_matches(['\r', '\n']).to_owned())
    }

    /// [`Client::request`] with bounded retries on `BUSY` (load-shed or
    /// forced — nothing was executed) and on a dead connection, with
    /// exponential backoff + jitter between attempts. A shed `BUSY`
    /// closes the connection, so a failed resend reconnects to the
    /// original peer address first. Retries are counted in
    /// [`client_retries_total`]; the last outcome is returned when the
    /// attempt budget runs out.
    pub fn request_with_retry(
        &mut self,
        line: &str,
        policy: RetryPolicy,
    ) -> std::io::Result<String> {
        let mut backoff = Backoff::new(policy.base_ms, policy.max_ms, policy.seed);
        let mut attempt = 0u32;
        loop {
            let result = self.request(line);
            let (retryable, reconnect) = match &result {
                Ok(response) => (response == "BUSY", false),
                Err(e) => (
                    matches!(
                        e.kind(),
                        ErrorKind::UnexpectedEof
                            | ErrorKind::ConnectionReset
                            | ErrorKind::ConnectionRefused
                            | ErrorKind::ConnectionAborted
                            | ErrorKind::BrokenPipe
                    ) && self.plan.is_none(),
                    true,
                ),
            };
            if !retryable || attempt + 1 >= policy.max_attempts.max(1) {
                return result;
            }
            attempt += 1;
            CLIENT_RETRIES.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(backoff.next_delay());
            if reconnect {
                let Some(addr) = self.addr else { return result };
                match Client::connect(addr) {
                    Ok(fresh) => {
                        self.reader = fresh.reader;
                        self.writer = fresh.writer;
                    }
                    Err(_) => continue, // next attempt retries the connect
                }
            }
        }
    }
}

/// One binary-protocol connection: buffered sends with client-chosen
/// request ids, explicit [`BinaryClient::flush`], and
/// [`BinaryClient::recv`] returning response frames in whatever order
/// the server produced them.
///
/// The pipelined pattern is `send`×K → `flush` → `recv`×K (or the
/// [`BinaryClient::pipeline`] convenience, which restores request
/// order). The very first byte this client writes is
/// [`wire::REQ_MAGIC`], which is what flips the server's front-end
/// sniff to binary.
pub struct BinaryClient {
    stream: TcpStream,
    /// Received-but-undecoded bytes (partial trailing frame).
    rbuf: Vec<u8>,
    /// Decode offset into `rbuf` (drained lazily between recvs).
    roff: usize,
    /// Encoded-but-unflushed request frames.
    wbuf: Vec<u8>,
    next_id: u64,
    plan: Option<Arc<FaultPlan>>,
    sent: u64,
}

impl BinaryClient {
    /// Connects to `addr` speaking the binary protocol.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<BinaryClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(BinaryClient {
            stream,
            rbuf: Vec::new(),
            roff: 0,
            wbuf: Vec::new(),
            next_id: 1,
            plan: None,
            sent: 0,
        })
    }

    /// Connects with a fault plan; each [`BinaryClient::send`] consumes
    /// one request index.
    pub fn connect_with_faults<A: ToSocketAddrs>(
        addr: A,
        plan: Arc<FaultPlan>,
    ) -> std::io::Result<BinaryClient> {
        let mut client = BinaryClient::connect(addr)?;
        client.plan = Some(plan);
        Ok(client)
    }

    /// Caps how long [`BinaryClient::recv`] waits for response bytes.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    fn severed(reason: &str) -> std::io::Error {
        std::io::Error::new(std::io::ErrorKind::ConnectionAborted, format!("injected fault: {reason}"))
    }

    /// Encodes one request into the send buffer (applying any client
    /// fault scheduled for this index) and returns its request id.
    /// Nothing hits the wire until [`BinaryClient::flush`].
    pub fn send(&mut self, request: &WireRequest) -> std::io::Result<u64> {
        let index = self.sent;
        self.sent += 1;
        let id = self.next_id;
        self.next_id += 1;
        let fault = self.plan.as_ref().and_then(|p| p.fault_at(index)).cloned();
        match fault {
            Some(Fault::EarlyEof) => {
                let _ = self.stream.shutdown(Shutdown::Both);
                return Err(Self::severed("early EOF"));
            }
            Some(Fault::TornWrite { bytes }) => {
                // Flush what honest requests are already owed, then send
                // a strictly incomplete frame and sever.
                let mut frame = Vec::new();
                wire::encode_request(id, request, &mut frame);
                let n = bytes.min(frame.len().saturating_sub(1));
                self.flush()?;
                self.stream.write_all(&frame[..n])?;
                self.stream.flush()?;
                let _ = self.stream.shutdown(Shutdown::Both);
                return Err(Self::severed("torn frame"));
            }
            Some(Fault::OversizedFrame { declared }) => {
                // A forged header claiming a `declared`-byte body, then a
                // few junk bytes: the server must reject from the header
                // alone and close. The frame is never completed.
                self.flush()?;
                let mut forged = vec![wire::REQ_MAGIC];
                forged.extend_from_slice(&declared.to_le_bytes());
                forged.extend_from_slice(&[0xEE; 4]);
                self.stream.write_all(&forged)?;
                self.stream.flush()?;
                return Ok(id);
            }
            Some(Fault::DelayMs { ms }) => {
                // Slow-loris a frame: half now, a pause, the rest.
                let mut frame = Vec::new();
                wire::encode_request(id, request, &mut frame);
                let half = frame.len() / 2;
                self.flush()?;
                self.stream.write_all(&frame[..half])?;
                self.stream.flush()?;
                std::thread::sleep(Duration::from_millis(ms));
                self.stream.write_all(&frame[half..])?;
                self.stream.flush()?;
                return Ok(id);
            }
            Some(Fault::ForceBusy | Fault::StallHandler { .. } | Fault::ForgeSeq) | None => {}
        }
        wire::encode_request(id, request, &mut self.wbuf);
        Ok(id)
    }

    /// Writes every buffered request frame to the socket.
    pub fn flush(&mut self) -> std::io::Result<()> {
        if !self.wbuf.is_empty() {
            self.stream.write_all(&self.wbuf)?;
            self.stream.flush()?;
            self.wbuf.clear();
        }
        Ok(())
    }

    /// Receives the next response frame, in server completion order —
    /// under pipelining this is *not* necessarily send order; match on
    /// [`ResponseFrame::id`].
    pub fn recv(&mut self) -> std::io::Result<ResponseFrame> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match wire::decode_response(&self.rbuf[self.roff..]) {
                Decoded::Frame { frame, consumed } => {
                    self.roff += consumed;
                    if self.roff == self.rbuf.len() {
                        self.rbuf.clear();
                        self.roff = 0;
                    }
                    return Ok(frame);
                }
                Decoded::Incomplete => {}
                Decoded::Oversized { declared } => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("response frame declares {declared} bytes"),
                    ));
                }
                Decoded::Malformed { reason, .. } => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("bad response frame: {reason}"),
                    ));
                }
                Decoded::Corrupt { reason } => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("bad response frame: {reason}"),
                    ));
                }
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            // Compact the consumed prefix before growing the buffer.
            if self.roff > 0 {
                self.rbuf.drain(..self.roff);
                self.roff = 0;
            }
            self.rbuf.extend_from_slice(&chunk[..n]);
        }
    }

    /// One synchronous request/response over the compatibility verb: the
    /// text-protocol `line` in, the text-protocol response line out.
    pub fn request(&mut self, line: &str) -> std::io::Result<String> {
        let id = self.send(&WireRequest::Text { line: line.trim_end().to_owned() })?;
        self.flush()?;
        let frame = self.expect(id)?;
        match frame.response {
            WireResponse::Line(line) => Ok(line),
            WireResponse::Batch(_) | WireResponse::Blob(_) => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "non-line response to a line request",
            )),
        }
    }

    /// One synchronous planned `QUERY` (the hot cached path).
    pub fn query(&mut self, doc: u64, xpath: &str) -> std::io::Result<String> {
        let id = self.send(&WireRequest::Query {
            doc,
            engine: Engine::Planned,
            xpath: xpath.to_owned(),
        })?;
        self.flush()?;
        match self.expect(id)?.response {
            WireResponse::Line(line) => Ok(line),
            WireResponse::Batch(_) | WireResponse::Blob(_) => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "non-line response to a single query",
            )),
        }
    }

    /// One `MQUERY` batch: one frame out, one response line per xpath
    /// back, in xpath order.
    pub fn mquery(&mut self, doc: u64, xpaths: &[&str]) -> std::io::Result<Vec<String>> {
        self.batch(doc, xpaths, false)
    }

    /// One `MLABEL` batch (same shape as [`BinaryClient::mquery`]).
    pub fn mlabel(&mut self, doc: u64, xpaths: &[&str]) -> std::io::Result<Vec<String>> {
        self.batch(doc, xpaths, true)
    }

    fn batch(
        &mut self,
        doc: u64,
        xpaths: &[&str],
        labels: bool,
    ) -> std::io::Result<Vec<String>> {
        let xpaths: Vec<String> = xpaths.iter().map(|x| (*x).to_owned()).collect();
        let request = if labels {
            WireRequest::MLabel { doc, xpaths }
        } else {
            WireRequest::MQuery { doc, xpaths }
        };
        let id = self.send(&request)?;
        self.flush()?;
        match self.expect(id)?.response {
            WireResponse::Batch(lines) => Ok(lines),
            WireResponse::Line(line) => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("expected a batch response, got: {line}"),
            )),
            WireResponse::Blob(_) => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "expected a batch response, got a blob",
            )),
        }
    }

    /// Pipelines `requests` — all sent before any response is read —
    /// and returns the responses **in request order**, re-associated by
    /// id however the server interleaved them.
    pub fn pipeline(
        &mut self,
        requests: &[WireRequest],
    ) -> std::io::Result<Vec<WireResponse>> {
        let mut ids = Vec::with_capacity(requests.len());
        for request in requests {
            ids.push(self.send(request)?);
        }
        self.flush()?;
        let mut by_id: Vec<Option<WireResponse>> = vec![None; requests.len()];
        for _ in 0..requests.len() {
            let frame = self.recv()?;
            match ids.iter().position(|&id| id == frame.id) {
                Some(slot) if by_id[slot].is_none() => by_id[slot] = Some(frame.response),
                _ => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("unexpected response id {}", frame.id),
                    ));
                }
            }
        }
        Ok(by_id.into_iter().map(|r| r.expect("all slots filled")).collect())
    }

    /// Receives until the frame answering `id` arrives; any other frame
    /// arriving first is a protocol error for the synchronous helpers.
    fn expect(&mut self, id: u64) -> std::io::Result<ResponseFrame> {
        let frame = self.recv()?;
        if frame.id != id {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("response id {} does not answer request {id}", frame.id),
            ));
        }
        Ok(frame)
    }
}
