//! Bounded, deadline-aware line framing for the wire protocol.
//!
//! `BufRead::read_line` is the wrong tool against hostile traffic: a fast
//! client streaming an endless line makes it buffer without bound, and a
//! slow-loris client dripping one byte per poll keeps a worker parked
//! forever. [`read_request_line`] fixes both: it assembles one line through
//! `fill_buf`/`consume` so at most `max_bytes` (plus the `BufReader`
//! block) is ever held, and it enforces a completion deadline measured
//! from the first byte of the line — an idle connection with no partial
//! line pending is allowed to sit quietly.
//!
//! Oversized lines are *drained* to their terminator without buffering,
//! so the caller can send a protocol error and keep the connection —
//! the framing layer resynchronizes on the next newline.

use std::io::{BufRead, ErrorKind};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// What one framed-read attempt produced. `Line` means `buf` holds a
/// complete, UTF-8-valid request line (terminator and trailing `\r`
/// stripped).
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum ReadOutcome {
    /// A complete line is in the caller's buffer.
    Line,
    /// Clean EOF: the peer closed between requests.
    Eof,
    /// EOF mid-line: the peer died after a partial request (a torn write
    /// from the peer's side).
    TornEof,
    /// The line exceeded `max_bytes`. `drained` tells whether the excess
    /// was consumed up to a terminator (connection is resynchronized) or
    /// the peer hit EOF first.
    Oversized {
        /// True when the connection can keep serving requests.
        drained: bool,
    },
    /// The line contained invalid UTF-8 (connection is resynchronized).
    BadUtf8,
    /// The line did not complete within the deadline.
    DeadlineExpired,
    /// The server-wide shutdown flag was observed.
    Shutdown,
}

/// Reads one `\n`-terminated line into `buf` (cleared first), holding at
/// most `max_bytes` of it, polling `shutdown`, and bounding the time from
/// first byte to terminator by `deadline`. Every byte consumed off the
/// stream (including drained oversized excess) is added to `bytes_read`,
/// which is how the `ruid_net_bytes_read_total` counter stays exact on
/// the text path.
///
/// The reader's underlying stream should have a short read timeout set
/// (the poll interval); `WouldBlock`/`TimedOut` errors are the polling
/// heartbeat, not failures.
pub(crate) fn read_request_line<R: BufRead>(
    reader: &mut R,
    buf: &mut Vec<u8>,
    max_bytes: usize,
    deadline: Duration,
    shutdown: &AtomicBool,
    bytes_read: &AtomicU64,
) -> std::io::Result<ReadOutcome> {
    buf.clear();
    let mut started: Option<Instant> = None;
    let mut discarding = false;
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(ReadOutcome::Shutdown);
        }
        let chunk = match reader.fill_buf() {
            Ok(chunk) => chunk,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if let Some(t0) = started {
                    if t0.elapsed() >= deadline {
                        return Ok(ReadOutcome::DeadlineExpired);
                    }
                }
                continue;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if chunk.is_empty() {
            return Ok(match (discarding, buf.is_empty()) {
                (true, _) => ReadOutcome::Oversized { drained: false },
                (false, true) => ReadOutcome::Eof,
                (false, false) => ReadOutcome::TornEof,
            });
        }
        started.get_or_insert_with(Instant::now);
        let newline = chunk.iter().position(|&b| b == b'\n');
        let take = newline.map_or(chunk.len(), |i| i + 1);
        bytes_read.fetch_add(take as u64, Ordering::Relaxed);
        if discarding {
            reader.consume(take);
            if newline.is_some() {
                return Ok(ReadOutcome::Oversized { drained: true });
            }
            continue;
        }
        let content = newline.unwrap_or(take); // line bytes, excluding '\n'
        if buf.len() + content > max_bytes {
            reader.consume(take);
            if newline.is_some() {
                return Ok(ReadOutcome::Oversized { drained: true });
            }
            buf.clear();
            discarding = true;
            continue;
        }
        buf.extend_from_slice(&chunk[..content]);
        reader.consume(take);
        if newline.is_some() {
            if buf.last() == Some(&b'\r') {
                buf.pop();
            }
            return Ok(if std::str::from_utf8(buf).is_ok() {
                ReadOutcome::Line
            } else {
                ReadOutcome::BadUtf8
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    const NO_DEADLINE: Duration = Duration::from_secs(3600);

    fn read(
        input: &[u8],
        max: usize,
    ) -> (ReadOutcome, Vec<u8>, BufReader<std::io::Cursor<Vec<u8>>>) {
        let mut reader = BufReader::with_capacity(4, std::io::Cursor::new(input.to_vec()));
        let mut buf = Vec::new();
        let shutdown = AtomicBool::new(false);
        let bytes = AtomicU64::new(0);
        let out =
            read_request_line(&mut reader, &mut buf, max, NO_DEADLINE, &shutdown, &bytes)
                .unwrap();
        (out, buf, reader)
    }

    #[test]
    fn plain_lines_and_crlf() {
        let (out, buf, _) = read(b"PING\n", 100);
        assert_eq!(out, ReadOutcome::Line);
        assert_eq!(buf, b"PING");
        let (out, buf, _) = read(b"PING\r\nrest", 100);
        assert_eq!(out, ReadOutcome::Line);
        assert_eq!(buf, b"PING", "trailing CR stripped");
        let (out, buf, _) = read(b"\n", 100);
        assert_eq!(out, ReadOutcome::Line);
        assert!(buf.is_empty(), "empty line is a (malformed) request, not EOF");
    }

    #[test]
    fn consecutive_lines_resume_where_the_last_stopped() {
        let mut reader =
            BufReader::with_capacity(4, std::io::Cursor::new(b"LIST\nPING\n".to_vec()));
        let mut buf = Vec::new();
        let shutdown = AtomicBool::new(false);
        let bytes = AtomicU64::new(0);
        let out =
            read_request_line(&mut reader, &mut buf, 100, NO_DEADLINE, &shutdown, &bytes).unwrap();
        assert_eq!((out, buf.as_slice()), (ReadOutcome::Line, b"LIST".as_slice()));
        let out =
            read_request_line(&mut reader, &mut buf, 100, NO_DEADLINE, &shutdown, &bytes).unwrap();
        assert_eq!((out, buf.as_slice()), (ReadOutcome::Line, b"PING".as_slice()));
        let out =
            read_request_line(&mut reader, &mut buf, 100, NO_DEADLINE, &shutdown, &bytes).unwrap();
        assert_eq!(out, ReadOutcome::Eof);
    }

    #[test]
    fn eof_variants() {
        assert_eq!(read(b"", 100).0, ReadOutcome::Eof);
        let (out, _, _) = read(b"PARTIAL", 100);
        assert_eq!(out, ReadOutcome::TornEof, "bytes but no terminator");
    }

    #[test]
    fn oversized_line_is_drained_to_the_terminator() {
        let input = b"AAAAAAAAAAAAAAAAAAAA\nPING\n"; // 20 As > max 8
        let mut reader = BufReader::with_capacity(4, std::io::Cursor::new(input.to_vec()));
        let mut buf = Vec::new();
        let shutdown = AtomicBool::new(false);
        let bytes = AtomicU64::new(0);
        let out = read_request_line(&mut reader, &mut buf, 8, NO_DEADLINE, &shutdown, &bytes).unwrap();
        assert_eq!(out, ReadOutcome::Oversized { drained: true });
        // The next request on the same connection still parses.
        let out = read_request_line(&mut reader, &mut buf, 8, NO_DEADLINE, &shutdown, &bytes).unwrap();
        assert_eq!((out, buf.as_slice()), (ReadOutcome::Line, b"PING".as_slice()));
    }

    #[test]
    fn oversized_line_hitting_eof_reports_undrained() {
        let (out, _, _) = read(b"AAAAAAAAAAAAAAAAAAAA", 8);
        assert_eq!(out, ReadOutcome::Oversized { drained: false });
    }

    #[test]
    fn boundary_is_exact() {
        let (out, buf, _) = read(b"12345678\n", 8);
        assert_eq!((out, buf.as_slice()), (ReadOutcome::Line, b"12345678".as_slice()));
        let (out, _, _) = read(b"123456789\n", 8);
        assert_eq!(out, ReadOutcome::Oversized { drained: true });
    }

    #[test]
    fn invalid_utf8_is_flagged_but_resynchronized() {
        let mut reader =
            BufReader::with_capacity(4, std::io::Cursor::new(b"\xff\xfe\nPING\n".to_vec()));
        let mut buf = Vec::new();
        let shutdown = AtomicBool::new(false);
        let bytes = AtomicU64::new(0);
        let out =
            read_request_line(&mut reader, &mut buf, 100, NO_DEADLINE, &shutdown, &bytes).unwrap();
        assert_eq!(out, ReadOutcome::BadUtf8);
        let out =
            read_request_line(&mut reader, &mut buf, 100, NO_DEADLINE, &shutdown, &bytes).unwrap();
        assert_eq!((out, buf.as_slice()), (ReadOutcome::Line, b"PING".as_slice()));
    }

    #[test]
    fn shutdown_flag_wins() {
        let mut reader = BufReader::new(std::io::Cursor::new(b"PING\n".to_vec()));
        let mut buf = Vec::new();
        let shutdown = AtomicBool::new(true);
        let bytes = AtomicU64::new(0);
        let out =
            read_request_line(&mut reader, &mut buf, 100, NO_DEADLINE, &shutdown, &bytes).unwrap();
        assert_eq!(out, ReadOutcome::Shutdown);
    }
}
