//! Deterministic fault injection for the service layer.
//!
//! A [`FaultPlan`] maps request indices to faults. The server and the
//! client each keep a monotone request counter; when the counter hits an
//! index the plan names, the corresponding fault fires — a torn write, a
//! delayed read, an early EOF, a forced `BUSY`, or a handler stall. The
//! plan is data, not randomness: the same plan against the same request
//! sequence always injects the same faults at the same points, which is
//! what lets the chaos tests assert exact metrics counters afterwards.
//! For randomized sweeps, [`FaultPlan::randomized`] scatters faults with
//! the in-repo SplitMix64, so a seed reproduces the whole storm.

use std::collections::BTreeMap;

use xmlgen::SplitMix64;

/// One injected fault. The side that interprets each variant is noted;
/// the other side treats it as "no fault".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Write only the first `bytes` bytes of the message, then sever the
    /// connection. Server: a torn response; client: a torn request (a
    /// partial line with no terminator, then EOF).
    TornWrite {
        /// How many bytes actually reach the wire.
        bytes: usize,
    },
    /// Pause `ms` milliseconds mid-transfer. Client: between the first
    /// half of the request line and the rest (a slow-loris write, which
    /// trips the server's read deadline when `ms` exceeds it). Server:
    /// before writing the response (exercises client read timeouts).
    DelayMs {
        /// Pause length in milliseconds.
        ms: u64,
    },
    /// Close the connection without transferring anything. Client: no
    /// request is sent; server: no response is sent.
    EarlyEof,
    /// Server only: answer `BUSY` instead of executing the request, as
    /// if the job queue had been full.
    ForceBusy,
    /// Server only: sleep `ms` milliseconds inside the handler before
    /// executing — the way to trip the per-request deadline on demand.
    /// On the binary path the stalled request is offloaded, so later
    /// pipelined requests on the same connection overtake it (the
    /// out-of-order response tests hang off this).
    StallHandler {
        /// Stall length in milliseconds.
        ms: u64,
    },
    /// Client only, binary protocol: send a frame header declaring a
    /// `declared`-byte body (pick one beyond the server's cap), followed
    /// by a few junk bytes. The server must reject it from the header
    /// alone — before any body arrives — and close.
    OversizedFrame {
        /// The body length the forged header declares.
        declared: u32,
    },
    /// Replication channel only (leader side of `REPL TAIL`): corrupt
    /// the sequence-number field of the first record in the shipped
    /// chunk. The follower's record validation must refuse the stream —
    /// a forged sequence is indistinguishable from a gap.
    ForgeSeq,
}

/// A deterministic schedule of faults keyed by request index (0-based,
/// counted per server or per client instance).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: BTreeMap<u64, Fault>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds `fault` at request index `index` (builder style).
    #[must_use]
    pub fn inject(mut self, index: u64, fault: Fault) -> FaultPlan {
        self.faults.insert(index, fault);
        self
    }

    /// A seeded random plan over `requests` request indices: each index
    /// independently draws a fault with probability `p`, choosing
    /// uniformly among the variants in `menu`. Equal seeds give equal
    /// plans on every platform (SplitMix64).
    pub fn randomized(seed: u64, requests: u64, p: f64, menu: &[Fault]) -> FaultPlan {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let mut plan = FaultPlan::new();
        if menu.is_empty() {
            return plan;
        }
        for index in 0..requests {
            if rng.gen_bool(p) {
                let fault = menu[rng.gen_range(0..menu.len())].clone();
                plan.faults.insert(index, fault);
            }
        }
        plan
    }

    /// The fault scheduled at `index`, if any.
    pub fn fault_at(&self, index: u64) -> Option<&Fault> {
        self.faults.get(&index)
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Iterates over `(index, fault)` in index order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &Fault)> {
        self.faults.iter().map(|(&i, f)| (i, f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_plan_fires_at_exact_indices() {
        let plan = FaultPlan::new()
            .inject(2, Fault::EarlyEof)
            .inject(5, Fault::TornWrite { bytes: 3 });
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.fault_at(0), None);
        assert_eq!(plan.fault_at(2), Some(&Fault::EarlyEof));
        assert_eq!(plan.fault_at(5), Some(&Fault::TornWrite { bytes: 3 }));
        assert_eq!(plan.fault_at(6), None);
    }

    #[test]
    fn randomized_is_deterministic_by_seed() {
        let menu =
            [Fault::EarlyEof, Fault::DelayMs { ms: 10 }, Fault::TornWrite { bytes: 1 }];
        let a = FaultPlan::randomized(7, 200, 0.25, &menu);
        let b = FaultPlan::randomized(7, 200, 0.25, &menu);
        assert_eq!(a.iter().collect::<Vec<_>>(), b.iter().collect::<Vec<_>>());
        assert!(!a.is_empty(), "p=0.25 over 200 indices should inject something");
        let c = FaultPlan::randomized(8, 200, 0.25, &menu);
        assert_ne!(
            a.iter().collect::<Vec<_>>(),
            c.iter().collect::<Vec<_>>(),
            "different seeds should differ"
        );
    }

    #[test]
    fn randomized_edge_cases() {
        assert!(FaultPlan::randomized(1, 100, 0.5, &[]).is_empty());
        assert!(FaultPlan::randomized(1, 0, 1.0, &[Fault::EarlyEof]).is_empty());
        let all = FaultPlan::randomized(1, 50, 1.0, &[Fault::EarlyEof]);
        assert_eq!(all.len(), 50);
    }
}
