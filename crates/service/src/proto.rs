//! The line-delimited request grammar and wire formatting.
//!
//! One request per line; tokens are whitespace-separated, except that
//! XPath expressions extend to the end of the line (optionally followed by
//! a trailing engine keyword for `QUERY`). Every response is exactly one
//! line: `OK ...` on success, `ERR <message>` on failure — so a client is
//! one `write` + one `read_line` per request.

use crate::metrics::Command;
use ruid_core::Ruid2;

/// A parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `PING` — liveness probe.
    Ping,
    /// `LOAD <path> [depth]` — parse and label a file (default depth 3).
    Load {
        /// Filesystem path of the XML document.
        path: String,
        /// `PartitionConfig::by_depth` parameter.
        depth: usize,
    },
    /// `LOADSTREAM <name> <event>...` — build and label a document
    /// directly from interval-encoded flat events (`start:end:name` /
    /// `start:end:=text` tokens), without materializing XML text.
    LoadStream {
        /// Display name the document is catalogued under.
        name: String,
        /// The whitespace-joined event tokens.
        events: String,
    },
    /// `UNLOAD <doc>` — drop a loaded document.
    Unload(u64),
    /// `LIST` — ids and paths of loaded documents.
    List,
    /// `LABEL <doc> <xpath>` — rUID labels of every match.
    Label {
        /// Target document id.
        doc: u64,
        /// XPath expression (may contain spaces).
        xpath: String,
    },
    /// `PARENT <doc> <g> <l> <true|false>` — the `rparent` arithmetic.
    Parent {
        /// Target document id.
        doc: u64,
        /// The identifier to take the parent of.
        label: Ruid2,
    },
    /// `QUERY <doc> <xpath> [engine]` — evaluate an XPath query.
    Query {
        /// Target document id.
        doc: u64,
        /// XPath expression (may contain spaces).
        xpath: String,
        /// `tree`, `ruid`, `indexed`, `interval`, `ancestry`, or
        /// `planned`.
        engine: Engine,
    },
    /// `EXPLAIN <doc> <xpath>` — the chosen physical plan, per-step
    /// estimated vs. actual cardinalities, and result-cache status.
    Explain {
        /// Target document id.
        doc: u64,
        /// XPath expression (may contain spaces).
        xpath: String,
    },
    /// `INSERT <doc> <g> <l> <true|false> <position> <fragment>` — insert
    /// one node (an empty element like `<tag a="v"/>`, a comment, a
    /// processing instruction, or bare text) as the `position`-th child of
    /// the node labelled `(g,l,r)`, committing a new catalog generation.
    Insert {
        /// Target document id.
        doc: u64,
        /// Label of the parent node.
        parent: Ruid2,
        /// Child rank to insert at (clamped to append).
        position: u32,
        /// The node to insert, as an XML fragment or bare text (runs of
        /// whitespace collapse to single spaces on the wire).
        fragment: String,
    },
    /// `DELETE <doc> <g> <l> <true|false>` — detach the whole subtree
    /// rooted at the labelled node, committing a new catalog generation.
    Delete {
        /// Target document id.
        doc: u64,
        /// Label of the subtree root to delete.
        label: Ruid2,
    },
    /// `RELABEL <doc>` — repartition and renumber the document from
    /// scratch (the maintenance escape hatch after heavy updates),
    /// committing a new catalog generation. The tree is untouched.
    Relabel(u64),
    /// `SCAN <doc> <global>` — storage rows of one rUID area.
    Scan {
        /// Target document id.
        doc: u64,
        /// The area's global index.
        global: u64,
    },
    /// `GET <doc> <g> <l> <true|false>` — subtree XML of one identifier.
    Get {
        /// Target document id.
        doc: u64,
        /// The identifier to fetch.
        label: Ruid2,
    },
    /// `STATS <doc>` — tree and numbering statistics.
    Stats(u64),
    /// `METRICS [prom]` — service counters and latency quantiles; `prom`
    /// selects the Prometheus text exposition.
    Metrics {
        /// Whether the Prometheus text format was requested.
        prom: bool,
    },
    /// `SNAPSHOT` — write and install a catalog snapshot, rotate the WAL.
    Snapshot,
    /// `PERSIST` — fsync the write-ahead log now.
    Persist,
    /// `TRACE [on|off|<threshold-ms>]` — inspect or change tracing state.
    Trace(TraceCmd),
    /// `SLOWLOG [n]` — the newest `n` captured slow requests (default 10).
    Slowlog(usize),
    /// `SHUTDOWN` — stop the server gracefully.
    Shutdown,
    /// `PROMOTE` — stop following and accept writes (no-op on a leader).
    Promote,
}

/// The `TRACE` sub-commands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceCmd {
    /// Bare `TRACE`: report the current state.
    Status,
    /// `TRACE on`: enable with the current threshold.
    On,
    /// `TRACE off`: disable capture.
    Off,
    /// `TRACE <ms>`: set the slow threshold and enable (`0` captures all).
    ThresholdMs(u64),
}

/// Which axis provider answers a `QUERY`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Plain DOM traversal (the no-numbering baseline).
    Tree,
    /// rUID label arithmetic for every axis.
    Ruid,
    /// rUID arithmetic + element-name index.
    Indexed,
    /// Nested-set `[rank, last_descendant]` position arithmetic.
    Interval,
    /// Compact ancestry labels (small-depth / Dahlgaard-style).
    Ancestry,
    /// Path-summary planner: containment-join physical plans with the
    /// step-by-step evaluator as fallback (the default).
    Planned,
}

impl Engine {
    fn parse(token: &str) -> Option<Engine> {
        match token {
            "tree" => Some(Engine::Tree),
            "ruid" => Some(Engine::Ruid),
            "indexed" => Some(Engine::Indexed),
            "interval" => Some(Engine::Interval),
            "ancestry" => Some(Engine::Ancestry),
            "planned" => Some(Engine::Planned),
            _ => None,
        }
    }
}

impl Request {
    /// The metrics bucket this request belongs to.
    pub fn command(&self) -> Command {
        match self {
            Request::Ping => Command::Ping,
            Request::Load { .. } => Command::Load,
            Request::LoadStream { .. } => Command::Load,
            Request::Unload(_) => Command::Unload,
            Request::List => Command::List,
            Request::Label { .. } => Command::Label,
            Request::Parent { .. } => Command::Parent,
            Request::Query { .. } => Command::Query,
            Request::Explain { .. } => Command::Explain,
            Request::Insert { .. } => Command::Insert,
            Request::Delete { .. } => Command::Delete,
            Request::Relabel(_) => Command::Relabel,
            Request::Scan { .. } => Command::Scan,
            Request::Get { .. } => Command::Get,
            Request::Stats(_) => Command::Stats,
            Request::Metrics { .. } => Command::Metrics,
            Request::Snapshot => Command::Snapshot,
            Request::Persist => Command::Persist,
            Request::Trace(_) => Command::Trace,
            Request::Slowlog(_) => Command::Slowlog,
            Request::Shutdown => Command::Shutdown,
            Request::Promote => Command::Promote,
        }
    }
}

fn parse_u64(token: &str, what: &str) -> Result<u64, String> {
    token.parse().map_err(|_| format!("bad {what} {token:?}"))
}

fn parse_label(tokens: &[&str]) -> Result<Ruid2, String> {
    let global = parse_u64(tokens[0], "global index")?;
    let local = parse_u64(tokens[1], "local index")?;
    let is_root = match tokens[2] {
        "true" => true,
        "false" => false,
        other => return Err(format!("bad root flag {other:?} (want true|false)")),
    };
    Ok(Ruid2::new(global, local, is_root))
}

/// Parses one request line.
///
/// The command keyword is case-insensitive; arguments are not.
pub fn parse(line: &str) -> Result<Request, String> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    let Some(&keyword) = tokens.first() else {
        return Err("empty request".into());
    };
    let args = &tokens[1..];
    let arity = |n: usize, usage: &str| -> Result<(), String> {
        if args.len() == n {
            Ok(())
        } else {
            Err(format!("usage: {usage}"))
        }
    };
    match keyword.to_ascii_uppercase().as_str() {
        "PING" => arity(0, "PING").map(|()| Request::Ping),
        "LOAD" => {
            if args.is_empty() || args.len() > 2 {
                return Err("usage: LOAD <path> [depth]".into());
            }
            let depth = match args.get(1) {
                Some(d) => parse_u64(d, "depth")? as usize,
                None => 3,
            };
            if depth == 0 {
                return Err("depth must be at least 1".into());
            }
            Ok(Request::Load { path: args[0].to_owned(), depth })
        }
        "LOADSTREAM" => {
            if args.len() < 2 {
                return Err("usage: LOADSTREAM <name> <start:end:content>...".into());
            }
            Ok(Request::LoadStream { name: args[0].to_owned(), events: args[1..].join(" ") })
        }
        "UNLOAD" => {
            arity(1, "UNLOAD <doc>")?;
            Ok(Request::Unload(parse_u64(args[0], "document id")?))
        }
        "LIST" => arity(0, "LIST").map(|()| Request::List),
        "LABEL" => {
            if args.len() < 2 {
                return Err("usage: LABEL <doc> <xpath>".into());
            }
            Ok(Request::Label {
                doc: parse_u64(args[0], "document id")?,
                xpath: args[1..].join(" "),
            })
        }
        "PARENT" => {
            arity(4, "PARENT <doc> <global> <local> <true|false>")?;
            Ok(Request::Parent {
                doc: parse_u64(args[0], "document id")?,
                label: parse_label(&args[1..4])?,
            })
        }
        "QUERY" => {
            if args.len() < 2 {
                return Err(
                    "usage: QUERY <doc> <xpath> [tree|ruid|indexed|interval|ancestry|planned]"
                        .into(),
                );
            }
            let doc = parse_u64(args[0], "document id")?;
            // A trailing engine keyword is only an engine when an xpath
            // remains in front of it.
            let (xpath_tokens, engine) = match Engine::parse(args[args.len() - 1]) {
                Some(engine) if args.len() >= 3 => (&args[1..args.len() - 1], engine),
                _ => (&args[1..], Engine::Planned),
            };
            Ok(Request::Query { doc, xpath: xpath_tokens.join(" "), engine })
        }
        "EXPLAIN" => {
            if args.len() < 2 {
                return Err("usage: EXPLAIN <doc> <xpath>".into());
            }
            Ok(Request::Explain {
                doc: parse_u64(args[0], "document id")?,
                xpath: args[1..].join(" "),
            })
        }
        "INSERT" => {
            if args.len() < 6 {
                return Err(
                    "usage: INSERT <doc> <global> <local> <true|false> <position> <fragment>"
                        .into(),
                );
            }
            Ok(Request::Insert {
                doc: parse_u64(args[0], "document id")?,
                parent: parse_label(&args[1..4])?,
                position: parse_u64(args[4], "position")? as u32,
                fragment: args[5..].join(" "),
            })
        }
        "DELETE" => {
            arity(4, "DELETE <doc> <global> <local> <true|false>")?;
            Ok(Request::Delete {
                doc: parse_u64(args[0], "document id")?,
                label: parse_label(&args[1..4])?,
            })
        }
        "RELABEL" => {
            arity(1, "RELABEL <doc>")?;
            Ok(Request::Relabel(parse_u64(args[0], "document id")?))
        }
        "SCAN" => {
            arity(2, "SCAN <doc> <global>")?;
            Ok(Request::Scan {
                doc: parse_u64(args[0], "document id")?,
                global: parse_u64(args[1], "global index")?,
            })
        }
        "GET" => {
            arity(4, "GET <doc> <global> <local> <true|false>")?;
            Ok(Request::Get {
                doc: parse_u64(args[0], "document id")?,
                label: parse_label(&args[1..4])?,
            })
        }
        "STATS" => {
            arity(1, "STATS <doc>")?;
            Ok(Request::Stats(parse_u64(args[0], "document id")?))
        }
        "METRICS" => match args {
            [] => Ok(Request::Metrics { prom: false }),
            ["prom"] => Ok(Request::Metrics { prom: true }),
            _ => Err("usage: METRICS [prom]".into()),
        },
        "SNAPSHOT" => arity(0, "SNAPSHOT").map(|()| Request::Snapshot),
        "PERSIST" => arity(0, "PERSIST").map(|()| Request::Persist),
        "TRACE" => match args {
            [] => Ok(Request::Trace(TraceCmd::Status)),
            ["on"] => Ok(Request::Trace(TraceCmd::On)),
            ["off"] => Ok(Request::Trace(TraceCmd::Off)),
            [ms] => Ok(Request::Trace(TraceCmd::ThresholdMs(parse_u64(
                ms,
                "trace threshold (ms)",
            )?))),
            _ => Err("usage: TRACE [on|off|<threshold-ms>]".into()),
        },
        "SLOWLOG" => match args {
            [] => Ok(Request::Slowlog(10)),
            [n] => Ok(Request::Slowlog(parse_u64(n, "slowlog entry count")? as usize)),
            _ => Err("usage: SLOWLOG [n]".into()),
        },
        "SHUTDOWN" => arity(0, "SHUTDOWN").map(|()| Request::Shutdown),
        "PROMOTE" => arity(0, "PROMOTE").map(|()| Request::Promote),
        other => Err(format!("unknown command {other:?}")),
    }
}

/// The wire rendering of an identifier: `(global,local,is_root)` with no
/// internal spaces, so label lists stay space-separated.
pub fn fmt_label(label: &Ruid2) -> String {
    format!("({},{},{})", label.global, label.local, label.is_root)
}

/// Escapes a string into one line: backslash, CR and LF become `\\`,
/// `\r`, `\n`.
pub fn escape_line(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_command() {
        assert_eq!(parse("PING").unwrap(), Request::Ping);
        assert_eq!(
            parse("LOAD /tmp/x.xml").unwrap(),
            Request::Load { path: "/tmp/x.xml".into(), depth: 3 }
        );
        assert_eq!(
            parse("load /tmp/x.xml 2").unwrap(),
            Request::Load { path: "/tmp/x.xml".into(), depth: 2 }
        );
        assert_eq!(
            parse("LOADSTREAM feed 1:4:a 2:3:b").unwrap(),
            Request::LoadStream { name: "feed".into(), events: "1:4:a 2:3:b".into() }
        );
        assert_eq!(parse("UNLOAD 7").unwrap(), Request::Unload(7));
        assert_eq!(parse("LIST").unwrap(), Request::List);
        assert_eq!(
            parse("LABEL 1 //a/b").unwrap(),
            Request::Label { doc: 1, xpath: "//a/b".into() }
        );
        assert_eq!(
            parse("PARENT 1 3 5 false").unwrap(),
            Request::Parent { doc: 1, label: Ruid2::new(3, 5, false) }
        );
        assert_eq!(
            parse("EXPLAIN 1 //a//b").unwrap(),
            Request::Explain { doc: 1, xpath: "//a//b".into() }
        );
        assert_eq!(
            parse("explain 2 //a[b > 1]/c").unwrap(),
            Request::Explain { doc: 2, xpath: "//a[b > 1]/c".into() }
        );
        assert_eq!(parse("SCAN 1 4").unwrap(), Request::Scan { doc: 1, global: 4 });
        assert_eq!(
            parse("GET 2 1 1 true").unwrap(),
            Request::Get { doc: 2, label: Ruid2::new(1, 1, true) }
        );
        assert_eq!(parse("STATS 9").unwrap(), Request::Stats(9));
        assert_eq!(
            parse("INSERT 1 2 5 false 0 <item/>").unwrap(),
            Request::Insert {
                doc: 1,
                parent: Ruid2::new(2, 5, false),
                position: 0,
                fragment: "<item/>".into()
            }
        );
        assert_eq!(
            parse("insert 1 1 1 true 3 <note kind=\"a b\"/>").unwrap(),
            Request::Insert {
                doc: 1,
                parent: Ruid2::new(1, 1, true),
                position: 3,
                fragment: "<note kind=\"a b\"/>".into()
            }
        );
        assert_eq!(
            parse("INSERT 1 1 1 true 0 some free text").unwrap(),
            Request::Insert {
                doc: 1,
                parent: Ruid2::new(1, 1, true),
                position: 0,
                fragment: "some free text".into()
            }
        );
        assert_eq!(
            parse("DELETE 4 3 7 false").unwrap(),
            Request::Delete { doc: 4, label: Ruid2::new(3, 7, false) }
        );
        assert_eq!(parse("RELABEL 4").unwrap(), Request::Relabel(4));
        assert_eq!(parse("METRICS").unwrap(), Request::Metrics { prom: false });
        assert_eq!(parse("METRICS prom").unwrap(), Request::Metrics { prom: true });
        assert_eq!(parse("SNAPSHOT").unwrap(), Request::Snapshot);
        assert_eq!(parse("persist").unwrap(), Request::Persist);
        assert_eq!(parse("TRACE").unwrap(), Request::Trace(TraceCmd::Status));
        assert_eq!(parse("TRACE on").unwrap(), Request::Trace(TraceCmd::On));
        assert_eq!(parse("trace off").unwrap(), Request::Trace(TraceCmd::Off));
        assert_eq!(parse("TRACE 250").unwrap(), Request::Trace(TraceCmd::ThresholdMs(250)));
        assert_eq!(parse("SLOWLOG").unwrap(), Request::Slowlog(10));
        assert_eq!(parse("SLOWLOG 3").unwrap(), Request::Slowlog(3));
        assert_eq!(parse("SHUTDOWN").unwrap(), Request::Shutdown);
        assert_eq!(parse("promote").unwrap(), Request::Promote);
        assert!(parse("PROMOTE now").is_err());
    }

    #[test]
    fn query_engine_disambiguation() {
        // Trailing engine keyword.
        assert_eq!(
            parse("QUERY 1 //a/b tree").unwrap(),
            Request::Query { doc: 1, xpath: "//a/b".into(), engine: Engine::Tree }
        );
        // No engine: default planned.
        assert_eq!(
            parse("QUERY 1 //a/b").unwrap(),
            Request::Query { doc: 1, xpath: "//a/b".into(), engine: Engine::Planned }
        );
        assert_eq!(
            parse("QUERY 1 //a/b planned").unwrap(),
            Request::Query { doc: 1, xpath: "//a/b".into(), engine: Engine::Planned }
        );
        assert_eq!(
            parse("QUERY 1 //a/b indexed").unwrap(),
            Request::Query { doc: 1, xpath: "//a/b".into(), engine: Engine::Indexed }
        );
        // XPath with internal spaces survives.
        assert_eq!(
            parse("QUERY 1 //book[price > 25]/title ruid").unwrap(),
            Request::Query {
                doc: 1,
                xpath: "//book[price > 25]/title".into(),
                engine: Engine::Ruid
            }
        );
        // The new engines parse like the old ones.
        assert_eq!(
            parse("QUERY 1 //a/b interval").unwrap(),
            Request::Query { doc: 1, xpath: "//a/b".into(), engine: Engine::Interval }
        );
        assert_eq!(
            parse("QUERY 1 //a/b ancestry").unwrap(),
            Request::Query { doc: 1, xpath: "//a/b".into(), engine: Engine::Ancestry }
        );
        // A bare engine-looking token is the xpath when nothing precedes it.
        assert_eq!(
            parse("QUERY 1 tree").unwrap(),
            Request::Query { doc: 1, xpath: "tree".into(), engine: Engine::Planned }
        );
        assert_eq!(
            parse("QUERY 1 ancestry").unwrap(),
            Request::Query { doc: 1, xpath: "ancestry".into(), engine: Engine::Planned }
        );
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse("").is_err());
        assert!(parse("   ").is_err());
        assert!(parse("FROB 1").is_err());
        assert!(parse("LOAD").is_err());
        assert!(parse("LOAD x.xml 0").is_err());
        assert!(parse("PARENT 1 2 3").is_err());
        assert!(parse("PARENT 1 2 3 maybe").is_err());
        assert!(parse("PARENT x 2 3 true").is_err());
        assert!(parse("SCAN 1").is_err());
        assert!(parse("STATS").is_err());
        assert!(parse("INSERT 1 2 5 false 0").is_err(), "missing fragment");
        assert!(parse("INSERT 1 2 5 maybe 0 <x/>").is_err(), "bad root flag");
        assert!(parse("INSERT 1 2 5 false pos <x/>").is_err(), "bad position");
        assert!(parse("DELETE 1 2 3").is_err());
        assert!(parse("DELETE 1 2 3 maybe").is_err());
        assert!(parse("RELABEL").is_err());
        assert!(parse("RELABEL 1 2").is_err());
        assert!(parse("EXPLAIN").is_err());
        assert!(parse("EXPLAIN 1").is_err());
        assert!(parse("EXPLAIN x //a").is_err());
        assert!(parse("PING extra").is_err());
        assert!(parse("SNAPSHOT now").is_err());
        assert!(parse("PERSIST 1").is_err());
        assert!(parse("METRICS xml").is_err());
        assert!(parse("TRACE maybe").is_err());
        assert!(parse("TRACE on off").is_err());
        assert!(parse("SLOWLOG x").is_err());
        assert!(parse("SLOWLOG 1 2").is_err());
        assert!(parse("LOADSTREAM").is_err());
        assert!(parse("LOADSTREAM feed").is_err(), "missing events");
    }

    #[test]
    fn label_and_escape_formats() {
        assert_eq!(fmt_label(&Ruid2::new(3, 17, false)), "(3,17,false)");
        assert_eq!(fmt_label(&Ruid2::new(1, 1, true)), "(1,1,true)");
        assert_eq!(escape_line("a\nb\\c\r"), "a\\nb\\\\c\\r");
        assert_eq!(escape_line("plain"), "plain");
    }
}
