//! Connection multiplexer for the binary protocol.
//!
//! The text front end parks one pool worker per connection — fine for a
//! handful of interactive clients, fatal for throughput: at 100k req/s
//! the per-request syscall pair plus a thread handoff per connection
//! dominates everything the rUID scheme made cheap. The binary front end
//! inverts the model: a small fixed set of mux workers each *drains many
//! sockets* from a single nonblocking poll loop, decoding every complete
//! frame buffered on a socket in one pass (that burst size is what the
//! `ruid_pipeline_depth` histogram measures), executing cheap verbs
//! inline, and answering a whole burst with one buffered write.
//!
//! Out-of-order responses: anything that can block — the `Text`
//! compatibility verb (LOAD does file I/O, SHUTDOWN fsyncs the WAL) or a
//! fault-stalled request — is offloaded to a private thread pool and its
//! response frame lands in the connection's outbox when done, while the
//! poll loop keeps serving later frames from the same socket. Request
//! ids are how clients re-associate them.
//!
//! Robustness mirrors the text path byte for byte: the same
//! `max_line_bytes` cap bounds a frame's payload (an oversized header is
//! rejected before any body is buffered), the same read deadline bounds
//! a partial frame (slow-loris), the same write deadline bounds a
//! blocked response, and every trip bumps the same metrics counter the
//! text path uses.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use par::{PoolStats, SubmitError, ThreadPool};
use plan::ResultCache;

use crate::catalog::Catalog;
use crate::fault::Fault;
use crate::metrics::{Command, Metrics, Protocol};
use crate::persist::Durability;
use crate::replication::ReplState;
use crate::server::{execute_frame, ServerConfig, ServiceCtx};
use crate::trace::Tracer;
use crate::wire::{self, Decoded, RequestFrame, WireResponse};

/// How long an idle worker parks waiting for adopted connections before
/// re-polling its sockets.
const IDLE_WAIT: Duration = Duration::from_micros(200);

/// Park length when the worker has no connections at all — nothing to
/// poll, so only adoption and shutdown can need it.
const EMPTY_WAIT: Duration = Duration::from_millis(25);

/// Read scratch size per worker (one `recv` worth of pipelined frames).
const SCRATCH_BYTES: usize = 64 * 1024;

/// Everything a mux worker needs to execute requests — the same bundle
/// [`ServiceCtx`] borrows, but owned, because workers outlive the
/// acceptor's stack frame.
pub(crate) struct MuxShared {
    pub(crate) config: ServerConfig,
    pub(crate) catalog: Arc<Catalog>,
    pub(crate) metrics: Arc<Metrics>,
    pub(crate) durability: Option<Arc<Durability>>,
    pub(crate) tracer: Arc<Tracer>,
    pub(crate) pool_stats: Arc<PoolStats>,
    pub(crate) plan_cache: Arc<ResultCache>,
    pub(crate) shutdown: Arc<AtomicBool>,
    /// The same monotone fault-plan index the text path advances.
    pub(crate) request_counter: Arc<AtomicU64>,
    /// Bound address, for the self-connect that wakes the acceptor when
    /// a binary `SHUTDOWN` sets the flag.
    pub(crate) listen_addr: SocketAddr,
    /// Replication state shared with the serving path (role, counters,
    /// and the armed `ForgeSeq` fault flag).
    pub(crate) repl: Arc<ReplState>,
}

impl MuxShared {
    fn ctx(&self) -> ServiceCtx<'_> {
        ServiceCtx {
            config: &self.config,
            catalog: &self.catalog,
            metrics: &self.metrics,
            durability: self.durability.as_deref(),
            tracer: &self.tracer,
            pool_stats: &self.pool_stats,
            plan_cache: &self.plan_cache,
            repl: &self.repl,
        }
    }
}

/// The offload pool, boxed separately from [`Mux`] so worker threads can
/// hold it without a cycle. `ThreadPool::shutdown` consumes the pool,
/// hence the `Option` dance at join time.
struct Offload {
    pool: Mutex<Option<ThreadPool>>,
}

/// The running multiplexer: adoption channels to the workers plus the
/// join handles the acceptor reaps at shutdown.
pub(crate) struct Mux {
    senders: Vec<Sender<TcpStream>>,
    next: AtomicUsize,
    workers: Mutex<Vec<JoinHandle<()>>>,
    offload: Arc<Offload>,
}

impl Mux {
    /// Spawns `config.mux_workers` poll-loop threads plus the offload
    /// pool for blocking verbs.
    pub(crate) fn start(shared: Arc<MuxShared>) -> Mux {
        let workers = shared.config.mux_workers.max(1);
        let offload = Arc::new(Offload {
            pool: Mutex::new(Some(ThreadPool::new(
                shared.config.threads,
                shared.config.queue_cap,
            ))),
        });
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let (tx, rx) = mpsc::channel();
            let shared = Arc::clone(&shared);
            let offload = Arc::clone(&offload);
            let handle = std::thread::Builder::new()
                .name(format!("ruid-mux-{i}"))
                .spawn(move || worker(&rx, &shared, &offload))
                .expect("spawn mux worker");
            senders.push(tx);
            handles.push(handle);
        }
        Mux { senders, next: AtomicUsize::new(0), workers: Mutex::new(handles), offload }
    }

    /// Hands a sniffed-as-binary connection to a worker (round-robin).
    /// The stream must already be in nonblocking mode.
    pub(crate) fn adopt(&self, stream: TcpStream) {
        let i = self.next.fetch_add(1, Ordering::Relaxed) % self.senders.len();
        // A send can only fail after shutdown, when the worker is gone —
        // dropping the stream is exactly what a closing server should do.
        let _ = self.senders[i].send(stream);
    }

    /// Joins the workers (the shutdown flag must already be set), then
    /// shuts down the offload pool, joining any in-flight jobs.
    pub(crate) fn join(&self) {
        for handle in self.workers.lock().unwrap().drain(..) {
            let _ = handle.join();
        }
        if let Some(pool) = self.offload.pool.lock().unwrap().take() {
            pool.shutdown();
        }
    }
}

/// What one `Conn::pump` pass concluded.
enum Pump {
    /// Frames, bytes, or responses moved — poll again soon.
    Progress,
    /// Nothing to do right now.
    Idle,
    /// Connection is finished (cleanly or not) — drop it.
    Close,
}

/// What dispatching one decoded frame asks of the poll loop.
enum Dispatch {
    Continue,
    /// Sever immediately, dropping any buffered output (EarlyEof).
    CloseNow,
    /// Stop reading; close once buffered output is flushed.
    FlushClose,
}

/// One multiplexed binary connection and its buffered state.
struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet decoded (partial trailing frame).
    rbuf: Vec<u8>,
    /// Encoded responses that could not be written without blocking.
    wbuf: Vec<u8>,
    /// When the current partial frame started arriving (read deadline).
    partial_since: Option<Instant>,
    /// When the current blocked write started (write deadline).
    blocked_since: Option<Instant>,
    /// Completed offloaded responses, pushed by pool jobs.
    outbox: Arc<Mutex<Vec<Vec<u8>>>>,
    /// Offloaded jobs submitted but not yet landed in the outbox —
    /// what keeps a draining connection open until every response it is
    /// owed has been delivered.
    pending: Arc<AtomicU64>,
    /// Stop reading; close as soon as all output is flushed.
    close_after_flush: bool,
    /// Peer closed its write side (EOF seen).
    read_eof: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            partial_since: None,
            blocked_since: None,
            outbox: Arc::new(Mutex::new(Vec::new())),
            pending: Arc::new(AtomicU64::new(0)),
            close_after_flush: false,
            read_eof: false,
        }
    }

    /// One full service pass: collect offloaded responses, read, decode
    /// and dispatch every complete frame, enforce deadlines, write.
    fn pump(
        &mut self,
        shared: &Arc<MuxShared>,
        offload: &Offload,
        scratch: &mut [u8],
        reply: &mut Vec<u8>,
    ) -> Pump {
        reply.clear();
        let mut progressed = self.collect_outbox();

        // Read everything available without blocking.
        if !self.close_after_flush && !self.read_eof {
            loop {
                match self.stream.read(scratch) {
                    Ok(0) => {
                        self.read_eof = true;
                        break;
                    }
                    Ok(n) => {
                        shared.metrics.add_net_read(n as u64);
                        self.rbuf.extend_from_slice(&scratch[..n]);
                        progressed = true;
                        if n < scratch.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => return Pump::Close,
                }
            }
        }

        // Decode and dispatch every complete frame in the buffer. The
        // number of frames served per pass is the realized pipeline
        // depth of this burst.
        if !self.close_after_flush {
            let cap = shared.config.max_line_bytes;
            let mut off = 0;
            let mut frames = 0u64;
            loop {
                match wire::decode_request(&self.rbuf[off..], cap) {
                    Decoded::Frame { frame, consumed } => {
                        off += consumed;
                        frames += 1;
                        shared.metrics.record_protocol_request(Protocol::Binary);
                        match self.dispatch(frame, shared, offload, reply) {
                            Dispatch::Continue => {}
                            Dispatch::CloseNow => return Pump::Close,
                            Dispatch::FlushClose => {
                                self.close_after_flush = true;
                                break;
                            }
                        }
                    }
                    Decoded::Incomplete => break,
                    Decoded::Malformed { id, reason, consumed } => {
                        off += consumed;
                        frames += 1;
                        shared.metrics.record(Command::Invalid, true, Duration::ZERO);
                        wire::encode_response(
                            id,
                            &WireResponse::Line(format!("ERR {reason}")),
                            reply,
                        );
                    }
                    Decoded::Oversized { declared } => {
                        shared.metrics.record_oversized();
                        shared.metrics.record(Command::Invalid, true, Duration::ZERO);
                        wire::encode_response(
                            0,
                            &WireResponse::Line(format!(
                                "ERR frame too large ({declared} bytes declared, \
                                 limit {cap})"
                            )),
                            reply,
                        );
                        self.close_after_flush = true;
                        break;
                    }
                    Decoded::Corrupt { .. } => return Pump::Close,
                }
            }
            if off > 0 {
                self.rbuf.drain(..off);
                progressed = true;
            }
            if frames > 0 {
                shared.metrics.record_pipeline_depth(frames);
            }
            // A leftover partial frame starts (or continues) the read
            // deadline; a fully drained buffer clears it.
            if self.rbuf.is_empty() {
                self.partial_since = None;
            } else if !self.read_eof && !self.close_after_flush {
                let since = *self.partial_since.get_or_insert_with(Instant::now);
                if since.elapsed() >= shared.config.read_deadline() {
                    shared.metrics.record_deadline_read();
                    shared.metrics.record(
                        Command::Invalid,
                        true,
                        shared.config.read_deadline(),
                    );
                    wire::encode_response(
                        0,
                        &WireResponse::Line(format!(
                            "ERR read deadline exceeded ({} ms to complete a frame)",
                            shared.config.read_timeout_ms
                        )),
                        reply,
                    );
                    self.close_after_flush = true;
                }
            }
            if self.read_eof && !self.close_after_flush {
                if !self.rbuf.is_empty() {
                    // Torn frame: the peer died mid-frame.
                    shared.metrics.record_torn();
                    self.rbuf.clear();
                }
                self.close_after_flush = true;
            }
        }

        // Write: previously blocked bytes first, then this pass's
        // replies straight out of the pooled buffer.
        match self.write_out(shared, reply) {
            Ok(wrote) => progressed |= wrote,
            Err(()) => return Pump::Close,
        }
        if let Some(since) = self.blocked_since {
            if since.elapsed() >= shared.config.write_deadline() {
                shared.metrics.record_deadline_write();
                return Pump::Close;
            }
        }
        if self.close_after_flush && self.wbuf.is_empty() {
            // A client that sent its burst and shut down its write side
            // is still owed every offloaded response in flight — close
            // only once nothing more can land in the outbox.
            if self.pending.load(Ordering::Acquire) == 0
                && self.outbox.lock().unwrap().is_empty()
            {
                return Pump::Close;
            }
        }
        if progressed {
            Pump::Progress
        } else {
            Pump::Idle
        }
    }

    /// Moves completed offloaded responses into the write buffer.
    fn collect_outbox(&mut self) -> bool {
        let mut outbox = self.outbox.lock().unwrap();
        if outbox.is_empty() {
            return false;
        }
        for frame in outbox.drain(..) {
            self.wbuf.extend_from_slice(&frame);
        }
        true
    }

    /// Executes one decoded frame: apply the fault plan, run cheap verbs
    /// inline (encoding straight into the pooled `reply` buffer), and
    /// offload anything that can block.
    fn dispatch(
        &mut self,
        frame: RequestFrame,
        shared: &Arc<MuxShared>,
        offload: &Offload,
        reply: &mut Vec<u8>,
    ) -> Dispatch {
        let index = shared.request_counter.fetch_add(1, Ordering::Relaxed);
        let fault = shared
            .config
            .fault_plan
            .as_ref()
            .and_then(|plan| plan.fault_at(index))
            .cloned();
        match fault {
            Some(Fault::ForceBusy) => {
                shared.metrics.record_shed();
                wire::encode_response(frame.id, &WireResponse::Line("BUSY".into()), reply);
                return Dispatch::Continue;
            }
            Some(Fault::EarlyEof) => return Dispatch::CloseNow,
            Some(Fault::TornWrite { bytes }) => {
                // Execute, then truncate the encoded response and sever:
                // the client sees a torn frame.
                let outcome = execute_frame(&shared.ctx(), frame.request, None);
                let before = reply.len();
                wire::encode_response(frame.id, &outcome.response, reply);
                reply.truncate(before + bytes.min(reply.len() - before));
                return Dispatch::FlushClose;
            }
            Some(Fault::StallHandler { ms }) => {
                // Stall off the poll loop: later pipelined frames on this
                // very connection overtake the stalled one — the
                // out-of-order case the protocol exists for.
                return self.offload_frame(frame, Some(ms), None, shared, offload, reply);
            }
            Some(Fault::DelayMs { ms }) => {
                return self.offload_frame(frame, None, Some(ms), shared, offload, reply);
            }
            Some(Fault::ForgeSeq) => {
                // Replication-channel fault: arm the flag; the next
                // `REPL TAIL` answer corrupts its first record's
                // sequence field. The frame itself executes normally.
                shared.repl.arm_forge();
            }
            Some(Fault::OversizedFrame { .. }) | None => {}
        }
        if matches!(
            frame.request,
            wire::WireRequest::Text { .. }
                | wire::WireRequest::ReplSnapshot { .. }
                | wire::WireRequest::ReplTail { .. }
        ) {
            // The compatibility verb can do anything the text protocol
            // can — including LOAD file I/O and WAL fsyncs — and the
            // replication shipping verbs read files, so none of them
            // ever runs on the poll loop.
            return self.offload_frame(frame, None, None, shared, offload, reply);
        }
        let outcome = execute_frame(&shared.ctx(), frame.request, None);
        wire::encode_response(frame.id, &outcome.response, reply);
        if outcome.shutdown {
            request_shutdown(shared);
            return Dispatch::FlushClose;
        }
        Dispatch::Continue
    }

    /// Runs a frame on the offload pool; its response frame arrives via
    /// the outbox. Queue-full sheds with `BUSY` (same policy as the
    /// acceptor), pool-closed means shutdown is racing us — also `BUSY`,
    /// the client is about to lose the connection anyway.
    fn offload_frame(
        &mut self,
        frame: RequestFrame,
        stall_ms: Option<u64>,
        delay_ms: Option<u64>,
        shared: &Arc<MuxShared>,
        offload: &Offload,
        reply: &mut Vec<u8>,
    ) -> Dispatch {
        let id = frame.id;
        let request = frame.request;
        let outbox = Arc::clone(&self.outbox);
        let pending = Arc::clone(&self.pending);
        let job_shared = Arc::clone(shared);
        pending.fetch_add(1, Ordering::AcqRel);
        let job = move || {
            let outcome = execute_frame(&job_shared.ctx(), request, stall_ms);
            if let Some(ms) = delay_ms {
                std::thread::sleep(Duration::from_millis(ms));
            }
            let mut buf = Vec::new();
            wire::encode_response(id, &outcome.response, &mut buf);
            outbox.lock().unwrap().push(buf);
            pending.fetch_sub(1, Ordering::AcqRel);
            if outcome.shutdown {
                request_shutdown(&job_shared);
            }
        };
        let submitted = match offload.pool.lock().unwrap().as_ref() {
            Some(pool) => pool.try_execute(job),
            None => Err(SubmitError::Closed),
        };
        if submitted.is_err() {
            // Full queue or racing shutdown: the job closure (and the
            // pending increment it would have resolved) was dropped by
            // the rejected submit — shed with BUSY, same as the acceptor.
            self.pending.fetch_sub(1, Ordering::AcqRel);
            shared.metrics.record_shed();
            wire::encode_response(id, &WireResponse::Line("BUSY".into()), reply);
        }
        Dispatch::Continue
    }

    /// Writes the backlog, then this pass's replies; whatever would
    /// block is stashed in `wbuf` for the next pass.
    fn write_out(
        &mut self,
        shared: &MuxShared,
        reply: &mut Vec<u8>,
    ) -> Result<bool, ()> {
        let mut progressed = false;
        while !self.wbuf.is_empty() {
            match self.stream.write(&self.wbuf) {
                Ok(0) => return Err(()),
                Ok(n) => {
                    shared.metrics.add_net_written(n as u64);
                    self.wbuf.drain(..n);
                    progressed = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    self.wbuf.extend_from_slice(reply);
                    reply.clear();
                    self.blocked_since.get_or_insert_with(Instant::now);
                    return Ok(progressed);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return Err(()),
            }
        }
        let mut off = 0;
        while off < reply.len() {
            match self.stream.write(&reply[off..]) {
                Ok(0) => return Err(()),
                Ok(n) => {
                    shared.metrics.add_net_written(n as u64);
                    off += n;
                    progressed = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    self.wbuf.extend_from_slice(&reply[off..]);
                    reply.clear();
                    self.blocked_since.get_or_insert_with(Instant::now);
                    return Ok(progressed);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return Err(()),
            }
        }
        reply.clear();
        self.blocked_since = None;
        Ok(progressed)
    }

    /// Final best-effort flush at server shutdown: switch back to
    /// blocking writes with the write deadline as timeout so a binary
    /// `SHUTDOWN`'s own `OK bye` still reaches its client.
    fn final_flush(&mut self, shared: &MuxShared) {
        self.collect_outbox();
        if self.wbuf.is_empty() {
            return;
        }
        let _ = self.stream.set_nonblocking(false);
        let _ = self.stream.set_write_timeout(Some(shared.config.write_deadline()));
        let len = self.wbuf.len() as u64;
        if self.stream.write_all(&self.wbuf).is_ok() {
            shared.metrics.add_net_written(len);
            let _ = self.stream.flush();
        }
        self.wbuf.clear();
    }
}

/// Sets the shutdown flag and wakes the acceptor, mirroring the text
/// path's `SHUTDOWN` handling.
fn request_shutdown(shared: &MuxShared) {
    shared.shutdown.store(true, Ordering::SeqCst);
    let _ = TcpStream::connect(shared.listen_addr);
}

/// One mux worker: adopt connections from `rx`, pump them all, park
/// briefly when nothing moved.
fn worker(rx: &Receiver<TcpStream>, shared: &Arc<MuxShared>, offload: &Offload) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut scratch = vec![0u8; SCRATCH_BYTES];
    // The worker's pooled reply buffer: every inline response of a pass
    // is encoded into it and written from it, so steady-state serving
    // allocates nothing per request.
    let mut reply: Vec<u8> = Vec::with_capacity(SCRATCH_BYTES);
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            for conn in &mut conns {
                conn.final_flush(shared);
            }
            return;
        }
        while let Ok(stream) = rx.try_recv() {
            conns.push(Conn::new(stream));
        }
        let mut progressed = false;
        let mut i = 0;
        while i < conns.len() {
            match conns[i].pump(shared, offload, &mut scratch, &mut reply) {
                Pump::Progress => {
                    progressed = true;
                    i += 1;
                }
                Pump::Idle => i += 1,
                Pump::Close => {
                    conns.swap_remove(i);
                }
            }
        }
        if !progressed {
            let wait = if conns.is_empty() { EMPTY_WAIT } else { IDLE_WAIT };
            match rx.recv_timeout(wait) {
                Ok(stream) => conns.push(Conn::new(stream)),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    // Acceptor gone without the flag — treat as shutdown.
                    std::thread::sleep(EMPTY_WAIT);
                }
            }
        }
    }
}
