//! WAL-shipping replication: the leader-side `REPL` verb handlers and
//! the follower's tailing thread, glued to the transport-independent
//! [`repl`] crate.
//!
//! The model is poll-based: the follower drives everything over ordinary
//! binary-protocol request/response frames, so replication traffic rides
//! the same multiplexer, deadlines, metrics, and fault plan as client
//! traffic. A follower bootstraps from the leader's newest snapshot,
//! then tails the WAL chain segment by segment, validating every shipped
//! byte with the same [`durable::RecordStream`] checks local recovery
//! applies. Anything invalid — a sequence gap, a bad checksum, a forged
//! watermark — is a *refusal*: the follower discards its catalog and
//! re-bootstraps. A replica is either a prefix of the leader or it is
//! rebuilding; there is no hybrid state.
//!
//! Consistency argument (DESIGN.md §16): rUID labels and table K are
//! deterministic functions of the mutation history, so a follower that
//! applies the same WAL records in the same order answers every
//! label-rendering query byte-identically to the leader. The path
//! summary, name index, order keys and store are pure derivations of the
//! (document, scheme) pair and are rebuilt locally, never shipped.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use durable::{DocState, WalOp};
use plan::ResultCache;
use repl::{Backoff, HelloInfo, SegmentTailer, TailChunk};

use crate::catalog::{Catalog, LoadedDoc};
use crate::client::BinaryClient;
use crate::persist::Durability;
use crate::server::ServiceCtx;
use crate::wire::{WireRequest, WireResponse};

/// Upper bound the follower asks for per `REPL TAIL` answer.
const TAIL_MAX_BYTES: u32 = 1 << 20;

/// Read/write deadline on the follower's replication connection — a
/// stalled leader must park the follower, not hang it forever.
const REPL_IO_TIMEOUT: Duration = Duration::from_secs(5);

const ROLE_LEADER: u8 = 0;
const ROLE_FOLLOWER: u8 = 1;

/// One follower's last reported position, kept by the leader.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FollowerAck {
    /// Segment generation the follower has applied through.
    pub generation: u64,
    /// Next sequence number the follower expects in that segment.
    pub seq: u64,
}

/// Shared replication state: the server's current role, the leader's
/// per-follower bookkeeping, the follower's lag gauges, and the counters
/// both `METRICS` and the Prometheus exposition render.
#[derive(Debug)]
pub struct ReplState {
    role: AtomicU8,
    leader_addr: Mutex<Option<String>>,
    promote_requested: AtomicBool,
    /// Armed by the mux when the fault plan schedules `Fault::ForgeSeq`;
    /// consumed by the next `REPL TAIL` answer, which corrupts the
    /// sequence field of the first shipped record.
    forge_next_tail: AtomicBool,
    // Leader side.
    chunks_shipped: AtomicU64,
    bytes_shipped: AtomicU64,
    snapshots_shipped: AtomicU64,
    acks_received: AtomicU64,
    followers: Mutex<BTreeMap<String, FollowerAck>>,
    // Follower side.
    records_applied: AtomicU64,
    bootstraps: AtomicU64,
    reconnects: AtomicU64,
    backoff_waits: AtomicU64,
    refusals: AtomicU64,
    quarantined: AtomicU64,
    promotions: AtomicU64,
    lag_records: AtomicU64,
    /// `Some(t)` while the follower is behind (lag became nonzero at
    /// `t`); `None` while caught up. Drives `ruid_repl_lag_seconds`.
    behind_since: Mutex<Option<Instant>>,
}

/// A point-in-time copy of every replication counter and gauge, for the
/// Prometheus renderer.
#[derive(Debug, Clone)]
pub struct ReplSample {
    /// True when this process currently accepts writes.
    pub is_leader: bool,
    /// Chunks shipped by `REPL TAIL`.
    pub chunks_shipped: u64,
    /// Data bytes shipped by `REPL TAIL`.
    pub bytes_shipped: u64,
    /// Snapshot images shipped by `REPL SNAPSHOT`.
    pub snapshots_shipped: u64,
    /// `REPL ACK` frames received.
    pub acks_received: u64,
    /// Followers currently known to this leader.
    pub followers: u64,
    /// WAL records applied by the follower thread.
    pub records_applied: u64,
    /// Snapshot bootstraps the follower performed.
    pub bootstraps: u64,
    /// Reconnect attempts after a lost leader connection.
    pub reconnects: u64,
    /// Backoff sleeps taken between reconnect attempts.
    pub backoff_waits: u64,
    /// Shipped streams refused (gap / checksum / forged watermark).
    pub refusals: u64,
    /// Documents quarantined by the follower's apply path.
    pub quarantined: u64,
    /// Completed promotions (follower → leader).
    pub promotions: u64,
    /// Records the follower still trails the leader by, as of its last
    /// successful poll.
    pub lag_records: u64,
    /// Seconds the follower has continuously been behind (0 when caught
    /// up).
    pub lag_seconds: f64,
}

impl ReplState {
    /// State for a process born as the leader.
    pub fn new_leader() -> ReplState {
        ReplState::new(ROLE_LEADER, None)
    }

    /// State for a process born following `leader`. The follower starts
    /// "behind": it has replicated nothing yet.
    pub fn new_follower(leader: String) -> ReplState {
        let state = ReplState::new(ROLE_FOLLOWER, Some(leader));
        *state.behind_since.lock().unwrap() = Some(Instant::now());
        state
    }

    fn new(role: u8, leader: Option<String>) -> ReplState {
        ReplState {
            role: AtomicU8::new(role),
            leader_addr: Mutex::new(leader),
            promote_requested: AtomicBool::new(false),
            forge_next_tail: AtomicBool::new(false),
            chunks_shipped: AtomicU64::new(0),
            bytes_shipped: AtomicU64::new(0),
            snapshots_shipped: AtomicU64::new(0),
            acks_received: AtomicU64::new(0),
            followers: Mutex::new(BTreeMap::new()),
            records_applied: AtomicU64::new(0),
            bootstraps: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            backoff_waits: AtomicU64::new(0),
            refusals: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            promotions: AtomicU64::new(0),
            lag_records: AtomicU64::new(0),
            behind_since: Mutex::new(None),
        }
    }

    /// True while this process refuses writes and tails a leader.
    pub fn is_follower(&self) -> bool {
        self.role.load(Ordering::SeqCst) == ROLE_FOLLOWER
    }

    /// The leader address writes should be redirected to, while following.
    pub fn leader_addr(&self) -> Option<String> {
        if self.is_follower() {
            self.leader_addr.lock().unwrap().clone()
        } else {
            None
        }
    }

    /// Asks the follower thread to stop cleanly; the role flips to
    /// leader only once it has (see [`ReplState::complete_promotion`]).
    pub fn request_promotion(&self) {
        self.promote_requested.store(true, Ordering::SeqCst);
    }

    /// True once a promotion was requested (the follower thread's stop
    /// signal).
    pub fn promotion_requested(&self) -> bool {
        self.promote_requested.load(Ordering::SeqCst)
    }

    /// Flips the role to leader — called by the follower thread after it
    /// has stopped applying, so no shipped record can interleave with a
    /// post-promotion write.
    pub fn complete_promotion(&self) {
        self.role.store(ROLE_LEADER, Ordering::SeqCst);
        self.promotions.fetch_add(1, Ordering::Relaxed);
        self.lag_records.store(0, Ordering::Relaxed);
        *self.behind_since.lock().unwrap() = None;
    }

    /// Arms the `ForgeSeq` fault for the next `REPL TAIL` answer.
    pub fn arm_forge(&self) {
        self.forge_next_tail.store(true, Ordering::SeqCst);
    }

    fn take_forge(&self) -> bool {
        self.forge_next_tail.swap(false, Ordering::SeqCst)
    }

    fn note_chunk(&self, bytes: usize) {
        self.chunks_shipped.fetch_add(1, Ordering::Relaxed);
        self.bytes_shipped.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    fn note_snapshot_shipped(&self) {
        self.snapshots_shipped.fetch_add(1, Ordering::Relaxed);
    }

    fn note_ack(&self, follower: &str, generation: u64, seq: u64, bye: bool) {
        self.acks_received.fetch_add(1, Ordering::Relaxed);
        let mut followers = self.followers.lock().unwrap();
        if bye {
            followers.remove(follower);
        } else {
            followers.insert(follower.to_owned(), FollowerAck { generation, seq });
        }
    }

    pub(crate) fn note_applied(&self) {
        self.records_applied.fetch_add(1, Ordering::Relaxed);
    }

    fn note_bootstrap(&self) {
        self.bootstraps.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_reconnect(&self) {
        self.reconnects.fetch_add(1, Ordering::Relaxed);
    }

    fn note_backoff(&self) {
        self.backoff_waits.fetch_add(1, Ordering::Relaxed);
    }

    fn note_refusal(&self) {
        self.refusals.fetch_add(1, Ordering::Relaxed);
    }

    fn note_quarantined(&self) {
        self.quarantined.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn set_lag(&self, records: u64) {
        self.lag_records.store(records, Ordering::Relaxed);
        let mut behind = self.behind_since.lock().unwrap();
        if records == 0 {
            *behind = None;
        } else if behind.is_none() {
            *behind = Some(Instant::now());
        }
    }

    /// Seconds the follower has continuously been behind; 0 when caught
    /// up (or when leading).
    pub fn lag_seconds(&self) -> f64 {
        self.behind_since
            .lock()
            .unwrap()
            .map(|t| t.elapsed().as_secs_f64())
            .unwrap_or(0.0)
    }

    /// Every counter and gauge at once, for the Prometheus renderer.
    pub fn sample(&self) -> ReplSample {
        ReplSample {
            is_leader: !self.is_follower(),
            chunks_shipped: self.chunks_shipped.load(Ordering::Relaxed),
            bytes_shipped: self.bytes_shipped.load(Ordering::Relaxed),
            snapshots_shipped: self.snapshots_shipped.load(Ordering::Relaxed),
            acks_received: self.acks_received.load(Ordering::Relaxed),
            followers: self.followers.lock().unwrap().len() as u64,
            records_applied: self.records_applied.load(Ordering::Relaxed),
            bootstraps: self.bootstraps.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            backoff_waits: self.backoff_waits.load(Ordering::Relaxed),
            refusals: self.refusals.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            promotions: self.promotions.load(Ordering::Relaxed),
            lag_records: self.lag_records.load(Ordering::Relaxed),
            lag_seconds: self.lag_seconds(),
        }
    }

    /// The `key=value` block `METRICS` appends for replication.
    pub fn render_line(&self) -> String {
        let s = self.sample();
        format!(
            "repl_role={} repl_lag_records={} repl_lag_seconds={:.3} repl_applied={} \
             repl_bootstraps={} repl_reconnects={} repl_backoff_waits={} repl_refusals={} \
             repl_quarantined={} repl_promotions={} repl_chunks_shipped={} \
             repl_bytes_shipped={} repl_snapshots_shipped={} repl_acks={} repl_followers={}",
            if s.is_leader { "leader" } else { "follower" },
            s.lag_records,
            s.lag_seconds,
            s.records_applied,
            s.bootstraps,
            s.reconnects,
            s.backoff_waits,
            s.refusals,
            s.quarantined,
            s.promotions,
            s.chunks_shipped,
            s.bytes_shipped,
            s.snapshots_shipped,
            s.acks_received,
            s.followers,
        )
    }
}

fn no_durability() -> WireResponse {
    WireResponse::Line(
        "ERR replication requires durability (start the leader with --data-dir)".into(),
    )
}

/// `REPL HELLO`: where the leader's log stands and which snapshot a
/// bootstrap should start from.
pub(crate) fn handle_hello(ctx: &ServiceCtx<'_>, _follower: &str) -> WireResponse {
    let Some(d) = ctx.durability else { return no_durability() };
    let (generation, next_seq, _committed) = d.wal_position();
    let info = HelloInfo { generation, next_seq, snapshot: d.newest_snapshot() };
    WireResponse::Blob(info.encode())
}

/// `REPL SNAPSHOT`: the raw bytes of one snapshot file. The follower
/// validates them with the same checksummed reader local recovery uses.
pub(crate) fn handle_snapshot(ctx: &ServiceCtx<'_>, generation: u64) -> WireResponse {
    let Some(d) = ctx.durability else { return no_durability() };
    let path = d.dir().join(durable::snapshot_file_name(generation));
    match std::fs::read(&path) {
        Ok(bytes) => {
            ctx.repl.note_snapshot_shipped();
            WireResponse::Blob(bytes)
        }
        Err(e) => WireResponse::Line(format!("ERR snapshot {generation} unavailable: {e}")),
    }
}

/// `REPL TAIL`: committed bytes of one WAL segment, starting at the
/// follower's offset.
///
/// The leader's coordinates (live generation, next sequence, committed
/// watermark) are frozen in one mutex acquisition; the file read happens
/// outside it. That is safe because a sealed segment is immutable and
/// the live segment is only ever *appended* to — clamping the read to
/// the frozen watermark can never ship an uncommitted byte.
pub(crate) fn handle_tail(
    ctx: &ServiceCtx<'_>,
    generation: u64,
    offset: u64,
    max_bytes: u32,
) -> WireResponse {
    let Some(d) = ctx.durability else { return no_durability() };
    let (live_gen, next_seq, committed) = d.wal_position();
    if generation > live_gen {
        return WireResponse::Line(format!(
            "ERR segment {generation} not yet written (live segment is {live_gen})"
        ));
    }
    let sealed = generation < live_gen;
    let path = d.dir().join(durable::wal_file_name(generation));
    let segment_len = if sealed {
        match std::fs::metadata(&path) {
            Ok(m) => m.len(),
            // The chain was pruned past the follower's position; it must
            // re-bootstrap from the newest snapshot.
            Err(e) => {
                return WireResponse::Line(format!("ERR segment {generation} unavailable: {e}"))
            }
        }
    } else {
        committed
    };
    let budget = max_bytes.min(repl::MAX_CHUNK_BYTES) as u64;
    let want = segment_len.saturating_sub(offset).min(budget);
    let mut data = if want == 0 {
        Vec::new()
    } else {
        match durable::read_segment(&path, offset, want as usize) {
            Ok(bytes) => bytes,
            Err(e) => {
                return WireResponse::Line(format!("ERR segment {generation} unavailable: {e}"))
            }
        }
    };
    if ctx.repl.take_forge() && data.len() >= durable::wal::RECORD_HEADER_LEN {
        // Record layout: [len u32][seq u64][crc u32][payload] — flip the
        // sequence field of the first shipped record. The CRC covers
        // seq‖payload, so the follower sees it as corruption either way.
        for b in &mut data[4..12] {
            *b ^= 0xFF;
        }
    }
    ctx.repl.note_chunk(data.len());
    let chunk = TailChunk {
        segment: generation,
        start_offset: offset,
        segment_len,
        sealed,
        leader_generation: live_gen,
        leader_seq: next_seq,
        data,
    };
    WireResponse::Blob(chunk.encode())
}

/// `REPL ACK`: record (or, on `bye`, forget) one follower's position.
pub(crate) fn handle_ack(
    ctx: &ServiceCtx<'_>,
    follower: &str,
    generation: u64,
    seq: u64,
    bye: bool,
) -> WireResponse {
    ctx.repl.note_ack(follower, generation, seq, bye);
    WireResponse::Line("OK".into())
}

/// Everything the follower thread needs, owned (it outlives the
/// acceptor's stack frame).
pub(crate) struct FollowerShared {
    pub(crate) leader: String,
    pub(crate) name: String,
    pub(crate) poll: Duration,
    pub(crate) catalog: Arc<Catalog>,
    pub(crate) durability: Option<Arc<Durability>>,
    pub(crate) plan_cache: Arc<ResultCache>,
    pub(crate) repl: Arc<ReplState>,
    pub(crate) shutdown: Arc<AtomicBool>,
}

/// Spawns the follower thread: connect → hello → snapshot bootstrap →
/// tail loop, with backoff reconnects, until shutdown or promotion.
pub(crate) fn spawn_follower(shared: FollowerShared) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("ruid-follower".into())
        .spawn(move || run_follower(&shared))
        .expect("spawn follower thread")
}

/// Why one poll of the leader failed.
enum PollFail {
    /// The shipped stream is invalid (or the leader lost our segment):
    /// discard everything and re-bootstrap. Nothing refused was applied.
    Refused(String),
    /// The connection died or timed out: reconnect with backoff and
    /// re-bootstrap.
    Io(String),
}

fn stop_requested(shared: &FollowerShared) -> bool {
    shared.shutdown.load(Ordering::SeqCst) || shared.repl.promotion_requested()
}

/// Sleeps up to `total`, waking early when shutdown or promotion is
/// requested — backoff must never outwait a `PROMOTE`.
fn interruptible_sleep(shared: &FollowerShared, total: Duration) {
    let deadline = Instant::now() + total;
    while !stop_requested(shared) {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        std::thread::sleep((deadline - now).min(Duration::from_millis(10)));
    }
}

fn wait_backoff(shared: &FollowerShared, backoff: &mut Backoff) {
    shared.repl.note_backoff();
    interruptible_sleep(shared, backoff.next_delay());
}

fn io_fail(e: std::io::Error) -> PollFail {
    PollFail::Io(e.to_string())
}

/// One synchronous replication request expecting a `Blob` answer. An
/// `ERR` line is a refusal (the leader cannot serve our position); any
/// transport failure is an I/O failure.
fn request_blob(client: &mut BinaryClient, request: &WireRequest) -> Result<Vec<u8>, PollFail> {
    let id = client.send(request).map_err(io_fail)?;
    client.flush().map_err(io_fail)?;
    let frame = client.recv().map_err(io_fail)?;
    if frame.id != id {
        return Err(PollFail::Io(format!("response id {} does not answer {id}", frame.id)));
    }
    match frame.response {
        WireResponse::Blob(bytes) => Ok(bytes),
        WireResponse::Line(line) => Err(PollFail::Refused(line)),
        WireResponse::Batch(_) => Err(PollFail::Refused("unexpected batch response".into())),
    }
}

/// Reports the follower's position to the leader (best-effort; `bye`
/// marks a clean detach so the leader drops us instead of timing out).
fn send_ack(
    shared: &FollowerShared,
    client: &mut BinaryClient,
    tailer: &SegmentTailer,
    bye: bool,
) -> Result<(), PollFail> {
    let request = WireRequest::ReplAck {
        generation: tailer.segment(),
        seq: tailer.expected_seq(),
        bye,
        follower: shared.name.clone(),
    };
    let id = client.send(&request).map_err(io_fail)?;
    client.flush().map_err(io_fail)?;
    let frame = client.recv().map_err(io_fail)?;
    if frame.id != id {
        return Err(PollFail::Io(format!("response id {} does not answer {id}", frame.id)));
    }
    Ok(())
}

fn log_local(
    shared: &FollowerShared,
    op: &WalOp,
    apply: impl FnOnce(),
) -> Result<(), String> {
    match &shared.durability {
        // The follower's own WAL makes its applied state durable: after
        // a promotion it recovers like any leader would.
        Some(d) => d.log_with(op, apply),
        None => {
            apply();
            Ok(())
        }
    }
}

/// Applies one shipped record through the same MVCC paths live commits
/// use. A per-document failure quarantines that document (remove + purge
/// caches) without poisoning the stream — exactly what local recovery
/// does with a document whose replay fails.
fn apply_record(shared: &FollowerShared, op: &WalOp) {
    if let Err(reason) = apply_op(shared, op) {
        let doc_id = op.doc_id();
        shared.catalog.remove(doc_id);
        shared.plan_cache.purge_doc(doc_id);
        shared.repl.note_quarantined();
        eprintln!("[ruid-follower] quarantined document {doc_id}: {reason}");
    }
    shared.repl.note_applied();
}

fn apply_op(shared: &FollowerShared, op: &WalOp) -> Result<(), String> {
    let catalog = &shared.catalog;
    match op {
        WalOp::Load { doc_id, path, config, with_store, xml } => {
            // Build outside the writer lock — parsing is the expensive
            // part and touches nothing shared.
            let state = DocState::build(*doc_id, path.clone(), xml, *config, *with_store)?;
            let mut loaded =
                LoadedDoc::from_recovered(state.path, state.doc, state.scheme, state.with_store);
            loaded.generation = catalog.next_generation();
            let _writers = catalog.begin_write();
            log_local(shared, op, || {
                catalog.insert_with_id(*doc_id, loaded);
                catalog.ensure_next_id(*doc_id + 1);
            })
        }
        WalOp::LoadStream { doc_id, path, config, with_store, events } => {
            let state =
                DocState::build_stream(*doc_id, path.clone(), events, *config, *with_store)?;
            let mut loaded =
                LoadedDoc::from_recovered(state.path, state.doc, state.scheme, state.with_store);
            loaded.generation = catalog.next_generation();
            let _writers = catalog.begin_write();
            log_local(shared, op, || {
                catalog.insert_with_id(*doc_id, loaded);
                catalog.ensure_next_id(*doc_id + 1);
            })
        }
        WalOp::Unload { doc_id } => {
            let _writers = catalog.begin_write();
            log_local(shared, op, || {
                catalog.remove(*doc_id);
            })?;
            shared.plan_cache.purge_doc(*doc_id);
            Ok(())
        }
        WalOp::Insert { .. } | WalOp::Delete { .. } | WalOp::Repartition { .. } => {
            let doc_id = op.doc_id();
            let _writers = catalog.begin_write();
            let loaded =
                catalog.get(doc_id).ok_or_else(|| format!("no document {doc_id}"))?;
            let generation = catalog.next_generation();
            let (next, _applied) = loaded.apply_update(op, generation)?;
            shared.plan_cache.purge_doc(doc_id);
            log_local(shared, op, || {
                catalog.replace(doc_id, next);
            })
        }
    }
}

/// Bootstraps the catalog from the leader's newest snapshot: fetch the
/// raw image, validate it with the checksummed snapshot reader, swap the
/// whole catalog under the writer lock, and (with local durability)
/// freeze the result in our own snapshot. Returns the WAL segment to
/// tail from, or `Ok(None)` when a stop/promotion arrived mid-bootstrap —
/// in that case the local catalog is left exactly as it was, because a
/// node that is about to become the leader must not have its state
/// clobbered by a half-installed snapshot of the *old* leader.
fn bootstrap(
    shared: &FollowerShared,
    client: &mut BinaryClient,
    hello: &HelloInfo,
) -> Result<Option<u64>, PollFail> {
    shared.repl.note_bootstrap();
    if stop_requested(shared) {
        return Ok(None);
    }
    let (start_segment, states, quarantined) = match hello.snapshot {
        Some(generation) => {
            let bytes =
                request_blob(client, &WireRequest::ReplSnapshot { generation })?;
            let load = durable::read_snapshot_bytes(&bytes)
                .map_err(|e| PollFail::Refused(format!("shipped snapshot invalid: {e}")))?;
            (load.generation, load.docs, load.quarantined)
        }
        // A leader that has never snapshotted: the chain starts at
        // segment 0 with an empty catalog.
        None => (0, Vec::new(), Vec::new()),
    };
    // The snapshot fetch can stall for a long time (slow leader, big
    // image). A PROMOTE that landed meanwhile must win: installing the
    // fetched image now would throw away the promoted node's serving
    // state *after* the operator decided it is the new source of truth.
    if stop_requested(shared) {
        return Ok(None);
    }
    for (id, reason) in &quarantined {
        eprintln!("[ruid-follower] leader snapshot quarantined document {id}: {reason}");
        shared.repl.note_quarantined();
    }
    {
        let _writers = shared.catalog.begin_write();
        for (id, _) in shared.catalog.snapshot_docs() {
            shared.catalog.remove(id);
            shared.plan_cache.purge_doc(id);
        }
        let mut max_id = 0;
        for state in states {
            max_id = max_id.max(state.id);
            let mut loaded = LoadedDoc::from_recovered(
                state.path,
                state.doc,
                state.scheme,
                state.with_store,
            );
            loaded.generation = shared.catalog.next_generation();
            shared.catalog.insert_with_id(state.id, loaded);
        }
        shared.catalog.ensure_next_id(max_id + 1);
    }
    if let Some(d) = &shared.durability {
        // Our own snapshot pins the bootstrapped state so a promoted (or
        // restarted) follower recovers without the leader.
        if let Err(e) = d.snapshot(&shared.catalog) {
            eprintln!("[ruid-follower] local snapshot failed: {e}");
        }
    }
    Ok(Some(start_segment))
}

/// One tail poll: request bytes at the tailer's position, validate,
/// apply, update the lag gauges. Returns whether the follower is caught
/// up with the leader's committed watermark.
fn poll_once(
    shared: &FollowerShared,
    client: &mut BinaryClient,
    tailer: &mut SegmentTailer,
) -> Result<bool, PollFail> {
    let blob = request_blob(
        client,
        &WireRequest::ReplTail {
            generation: tailer.segment(),
            offset: tailer.offset(),
            max_bytes: TAIL_MAX_BYTES,
        },
    )?;
    let chunk = TailChunk::decode(&blob).map_err(PollFail::Refused)?;
    let batch = tailer.offer(&chunk).map_err(|e| PollFail::Refused(e.to_string()))?;
    for (_seq, op) in &batch.records {
        if stop_requested(shared) {
            // Stop mid-batch: what was already applied is a valid prefix;
            // the rest stays unapplied so a promotion can never interleave
            // shipped records with fresh writes.
            break;
        }
        apply_record(shared, op);
    }
    let lag = if tailer.segment() == chunk.leader_generation {
        chunk.leader_seq.saturating_sub(tailer.expected_seq())
    } else {
        // Mid-chain: intermediate sealed segments hide the exact count,
        // but the leader's whole live segment is certainly still ahead.
        chunk.leader_seq.saturating_add(1)
    };
    shared.repl.set_lag(lag);
    Ok(batch.caught_up)
}

/// Deterministic backoff seed from the follower's name, so multi-replica
/// tests get decorrelated jitter without shared randomness.
fn seed_from(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

fn run_follower(shared: &FollowerShared) {
    let mut backoff = Backoff::new(25, 2_000, seed_from(&shared.name));
    'session: loop {
        if stop_requested(shared) {
            break;
        }
        let mut client = match BinaryClient::connect(&shared.leader) {
            Ok(client) => {
                backoff.reset();
                client
            }
            Err(_) => {
                shared.repl.note_reconnect();
                wait_backoff(shared, &mut backoff);
                continue;
            }
        };
        let _ = client.set_timeout(Some(REPL_IO_TIMEOUT));
        let hello = match request_blob(
            &mut client,
            &WireRequest::ReplHello { follower: shared.name.clone() },
        )
        .and_then(|bytes| HelloInfo::decode(&bytes).map_err(PollFail::Refused))
        {
            Ok(hello) => hello,
            Err(PollFail::Refused(reason)) => {
                eprintln!("[ruid-follower] leader refused hello: {reason}");
                shared.repl.note_refusal();
                wait_backoff(shared, &mut backoff);
                continue;
            }
            Err(PollFail::Io(reason)) => {
                eprintln!("[ruid-follower] hello failed: {reason}");
                shared.repl.note_reconnect();
                wait_backoff(shared, &mut backoff);
                continue;
            }
        };
        let start_segment = match bootstrap(shared, &mut client, &hello) {
            Ok(Some(segment)) => segment,
            // Stop/promotion raced the bootstrap: nothing was installed,
            // exit the session loop so the promotion completes on an
            // unclobbered catalog.
            Ok(None) => break 'session,
            Err(PollFail::Refused(reason)) => {
                eprintln!("[ruid-follower] bootstrap refused: {reason}");
                shared.repl.note_refusal();
                wait_backoff(shared, &mut backoff);
                continue;
            }
            Err(PollFail::Io(reason)) => {
                eprintln!("[ruid-follower] bootstrap failed: {reason}");
                shared.repl.note_reconnect();
                wait_backoff(shared, &mut backoff);
                continue;
            }
        };
        let mut tailer = SegmentTailer::new(start_segment);
        loop {
            if stop_requested(shared) {
                // Clean detach: tell the leader goodbye so it forgets us
                // instead of hitting a write deadline on a dead socket.
                let _ = send_ack(shared, &mut client, &tailer, true);
                break 'session;
            }
            match poll_once(shared, &mut client, &mut tailer) {
                Ok(caught_up) => {
                    let _ = send_ack(shared, &mut client, &tailer, false);
                    if caught_up {
                        interruptible_sleep(shared, shared.poll);
                    }
                }
                Err(PollFail::Refused(reason)) => {
                    eprintln!(
                        "[ruid-follower] refused shipped stream (segment {} offset {}): \
                         {reason}; re-bootstrapping",
                        tailer.segment(),
                        tailer.offset()
                    );
                    shared.repl.note_refusal();
                    continue 'session;
                }
                Err(PollFail::Io(reason)) => {
                    eprintln!("[ruid-follower] tail failed: {reason}");
                    shared.repl.note_reconnect();
                    wait_backoff(shared, &mut backoff);
                    continue 'session;
                }
            }
        }
    }
    if shared.repl.promotion_requested() {
        shared.repl.complete_promotion();
        eprintln!(
            "[ruid-follower] promoted to leader (applied {} records)",
            shared.repl.sample().records_applied
        );
    }
}
