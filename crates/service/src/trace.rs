//! Per-request tracing and the slow-query log.
//!
//! Every traced request gets a process-unique trace id and a fixed set of
//! span timers covering the request pipeline: parse → catalog lookup →
//! eval → WAL append → reply write. When a request's total latency
//! crosses the tracer's threshold, its breakdown is pushed into a
//! fixed-capacity ring buffer served by the `SLOWLOG [n]` verb; the
//! `TRACE <on|off|threshold-ms>` verb flips tracing and tunes the
//! threshold at runtime, with zero cost on the hot path while off (one
//! relaxed atomic load per request).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::metrics::Command;
use crate::proto::escape_line;

/// The instrumented pipeline stages of one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Span {
    /// Request-line parsing (`proto::parse`).
    Parse = 0,
    /// Catalog shard lock + document fetch.
    Lookup,
    /// XPath evaluation / label arithmetic / store scans.
    Eval,
    /// WAL append (+ policy fsync) for mutating verbs.
    Wal,
    /// Writing the response line back to the socket.
    Write,
}

/// Number of spans (the size of per-span arrays).
pub const SPAN_COUNT: usize = 5;

/// Every span, aligned with the `repr(usize)` discriminants.
pub const SPANS: [Span; SPAN_COUNT] =
    [Span::Parse, Span::Lookup, Span::Eval, Span::Wal, Span::Write];

impl Span {
    /// The span's name as rendered in slowlog entries (`<name>_ns=`).
    pub fn name(self) -> &'static str {
        match self {
            Span::Parse => "parse",
            Span::Lookup => "lookup",
            Span::Eval => "eval",
            Span::Wal => "wal",
            Span::Write => "write",
        }
    }
}

/// Span timings of one in-flight request. Plain `u64`s — the trace lives
/// on one connection thread and is published only via [`Tracer::observe`].
#[derive(Debug, Clone)]
pub struct RequestTrace {
    id: u64,
    spans: [u64; SPAN_COUNT],
}

impl RequestTrace {
    /// A fresh trace with the given id and zeroed spans.
    pub fn new(id: u64) -> RequestTrace {
        RequestTrace { id, spans: [0; SPAN_COUNT] }
    }

    /// The request's trace id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Adds `ns` to one span (spans can accrue across retries).
    pub fn record(&mut self, span: Span, ns: u64) {
        self.spans[span as usize] += ns;
    }

    /// Nanoseconds accrued in one span.
    pub fn span_ns(&self, span: Span) -> u64 {
        self.spans[span as usize]
    }
}

/// One captured slow request.
#[derive(Debug, Clone)]
pub struct SlowEntry {
    /// Monotonic capture sequence number (total order of captures).
    pub seq: u64,
    /// The request's trace id.
    pub trace_id: u64,
    /// Which command ran.
    pub command: Command,
    /// End-to-end request nanoseconds.
    pub total_ns: u64,
    /// Per-span nanoseconds ([`SPANS`] order).
    pub spans: [u64; SPAN_COUNT],
    /// The request line, truncated to [`LINE_CAP`] bytes.
    pub line: String,
}

/// Captured request lines are truncated to this many bytes — the slowlog
/// is a diagnostic ring, not a request archive.
pub const LINE_CAP: usize = 128;

/// Default slow threshold when tracing is first enabled: 100 ms.
pub const DEFAULT_THRESHOLD_NS: u64 = 100_000_000;

/// The shared tracing state: an on/off switch, a slow threshold, and the
/// ring buffer of captured slow requests.
pub struct Tracer {
    enabled: AtomicBool,
    threshold_ns: AtomicU64,
    next_id: AtomicU64,
    captured: AtomicU64,
    log: Mutex<VecDeque<SlowEntry>>,
    capacity: usize,
}

impl Tracer {
    /// A disabled tracer with the default threshold and `capacity` slots
    /// (min 1) in the slow-query ring.
    pub fn new(capacity: usize) -> Tracer {
        Tracer {
            enabled: AtomicBool::new(false),
            threshold_ns: AtomicU64::new(DEFAULT_THRESHOLD_NS),
            next_id: AtomicU64::new(1),
            captured: AtomicU64::new(0),
            log: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
        }
    }

    /// Whether per-request tracing is on (one relaxed load).
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns tracing on (keeping the current threshold).
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Turns tracing off. Captured slowlog entries are kept.
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// The current slow threshold in nanoseconds.
    pub fn threshold_ns(&self) -> u64 {
        self.threshold_ns.load(Ordering::Relaxed)
    }

    /// Sets the slow threshold (ms) and enables tracing — `TRACE 0`
    /// captures everything, which is how tests and sessions inspect span
    /// breakdowns without a genuinely slow query.
    pub fn set_threshold_ms(&self, ms: u64) {
        self.threshold_ns.store(ms.saturating_mul(1_000_000), Ordering::Relaxed);
        self.enable();
    }

    /// A fresh trace with a process-unique id.
    pub fn begin(&self) -> RequestTrace {
        RequestTrace::new(self.next_id.fetch_add(1, Ordering::Relaxed))
    }

    /// Total slow captures since start (monotonic; unaffected by the ring
    /// evicting old entries).
    pub fn captured(&self) -> u64 {
        self.captured.load(Ordering::Relaxed)
    }

    /// Entries currently held in the ring.
    pub fn entries(&self) -> usize {
        self.log.lock().map(|l| l.len()).unwrap_or(0)
    }

    /// The ring's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Publishes a finished request: captured into the slowlog when
    /// `total_ns` meets the threshold.
    pub fn observe(&self, command: Command, line: &str, total_ns: u64, trace: &RequestTrace) {
        if total_ns < self.threshold_ns() {
            return;
        }
        let seq = self.captured.fetch_add(1, Ordering::Relaxed);
        let mut truncated: String = line.chars().take(LINE_CAP).collect();
        if truncated.len() < line.len() {
            truncated.push('…');
        }
        let entry = SlowEntry {
            seq,
            trace_id: trace.id,
            command,
            total_ns,
            spans: trace.spans,
            line: truncated,
        };
        if let Ok(mut log) = self.log.lock() {
            if log.len() == self.capacity {
                log.pop_front();
            }
            log.push_back(entry);
        }
    }

    /// The `TRACE` status line (without the `OK ` prefix).
    pub fn render_status(&self) -> String {
        format!(
            "trace={} threshold_ms={} entries={} captured={} capacity={}",
            if self.enabled() { "on" } else { "off" },
            self.threshold_ns() / 1_000_000,
            self.entries(),
            self.captured(),
            self.capacity,
        )
    }

    /// The `SLOWLOG [n]` response body (without the `OK ` prefix): a
    /// header followed by ` | `-separated entries, newest last, at most
    /// `n` of them.
    pub fn render_slowlog(&self, n: usize) -> String {
        let entries: Vec<SlowEntry> = self
            .log
            .lock()
            .map(|log| {
                let skip = log.len().saturating_sub(n);
                log.iter().skip(skip).cloned().collect()
            })
            .unwrap_or_default();
        let mut out = format!(
            "n={} captured={} threshold_ms={}",
            entries.len(),
            self.captured(),
            self.threshold_ns() / 1_000_000,
        );
        for e in &entries {
            out.push_str(&format!(
                " | seq={} id={} cmd={} total_ns={}",
                e.seq,
                e.trace_id,
                e.command.name(),
                e.total_ns,
            ));
            for span in SPANS {
                out.push_str(&format!(" {}_ns={}", span.name(), e.spans[span as usize]));
            }
            out.push_str(&format!(" line={}", escape_line(&e.line)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traced(tracer: &Tracer, total_ns: u64, line: &str) -> RequestTrace {
        let mut t = tracer.begin();
        t.record(Span::Parse, total_ns / 10);
        t.record(Span::Eval, total_ns / 2);
        tracer.observe(Command::Query, line, total_ns, &t);
        t
    }

    #[test]
    fn threshold_gates_capture() {
        let tracer = Tracer::new(4);
        assert!(!tracer.enabled());
        tracer.set_threshold_ms(1); // 1 ms, also enables
        assert!(tracer.enabled());
        traced(&tracer, 500_000, "QUERY 1 /fast"); // below threshold
        assert_eq!(tracer.captured(), 0);
        traced(&tracer, 2_000_000, "QUERY 1 /slow");
        assert_eq!(tracer.captured(), 1);
        assert_eq!(tracer.entries(), 1);
        let log = tracer.render_slowlog(10);
        assert!(log.contains("cmd=QUERY"), "{log}");
        assert!(log.contains("total_ns=2000000"), "{log}");
        assert!(log.contains("eval_ns=1000000"), "{log}");
        assert!(log.contains("line=QUERY 1 /slow"), "{log}");
    }

    #[test]
    fn ring_evicts_oldest_but_keeps_monotonic_seq() {
        let tracer = Tracer::new(2);
        tracer.set_threshold_ms(0);
        for i in 0..5 {
            traced(&tracer, 1_000 + i, &format!("QUERY 1 /q{i}"));
        }
        assert_eq!(tracer.captured(), 5);
        assert_eq!(tracer.entries(), 2);
        let log = tracer.render_slowlog(10);
        assert!(log.starts_with("n=2 captured=5"), "{log}");
        assert!(log.contains("seq=3") && log.contains("seq=4"), "{log}");
        assert!(!log.contains("/q0"), "{log}");
        // n=1 returns only the newest.
        let one = tracer.render_slowlog(1);
        assert!(one.contains("/q4") && !one.contains("/q3"), "{one}");
    }

    #[test]
    fn long_lines_truncate() {
        let tracer = Tracer::new(2);
        tracer.set_threshold_ms(0);
        let line = format!("QUERY 1 /{}", "x".repeat(500));
        traced(&tracer, 10, &line);
        let log = tracer.render_slowlog(1);
        assert!(log.len() < 400, "entry must truncate: {} bytes", log.len());
        assert!(log.contains('…'), "{log}");
    }

    #[test]
    fn status_line_reports_state() {
        let tracer = Tracer::new(8);
        let s = tracer.render_status();
        assert!(s.contains("trace=off") && s.contains("threshold_ms=100"), "{s}");
        tracer.set_threshold_ms(250);
        tracer.disable();
        let s = tracer.render_status();
        assert!(s.contains("trace=off") && s.contains("threshold_ms=250"), "{s}");
        tracer.enable();
        assert!(tracer.render_status().contains("trace=on"));
    }

    #[test]
    fn trace_ids_are_unique() {
        let tracer = Tracer::new(2);
        let a = tracer.begin();
        let b = tracer.begin();
        assert_ne!(a.id(), b.id());
    }
}
