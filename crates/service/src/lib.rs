//! # ruid-service — a concurrent XML labeling and query service
//!
//! The paper's central property (Lemma 1 / Fig. 6) is that rUID turns
//! parent and ancestor computation into pure in-memory arithmetic over a
//! label plus the small shared table *K*. Nothing about answering a
//! structural query mutates the numbering, so once a document is labeled,
//! any number of clients can resolve `rparent`, axes, and XPath queries
//! **concurrently** — reads never contend with each other.
//!
//! This crate is the serving layer that exploits that:
//!
//! * [`Catalog`] — a sharded document catalog. Each shard is an
//!   `RwLock<HashMap<DocId, Arc<LoadedDoc>>>`; a [`LoadedDoc`] bundles the
//!   parsed [`Document`](xmldom::Document), its
//!   [`Ruid2Scheme`](ruid_core::Ruid2Scheme), a
//!   [`NameIndex`](xpath::NameIndex) and an identifier-sorted
//!   [`XmlStore`](xmlstore::XmlStore). Hot-path commands (`PARENT`,
//!   `QUERY`, `SCAN`, `GET`) take a shard's *shared* lock just long enough
//!   to clone the `Arc`; `LOAD`/`UNLOAD` take one shard's exclusive lock.
//! * [`ThreadPool`] — a fixed pool of OS worker threads fed by a *bounded*
//!   MPSC job queue (backpressure on accept), shut down gracefully with
//!   poison pills and `join`.
//! * [`Metrics`] — lock-free per-command atomic counters, error counts and
//!   fixed-bucket latency histograms; `METRICS` reports p50/p95/p99
//!   computed on demand, and the server dumps the table on shutdown.
//! * [`Server`] / [`Client`] — a line-delimited text protocol over
//!   `std::net::TcpListener` (no external runtime), plus the in-process
//!   client used by the CLI and the test suite.
//! * [`FaultPlan`] — deterministic fault injection (torn writes, delayed
//!   reads, early EOFs, forced `BUSY`, handler stalls) keyed by request
//!   index, for chaos-testing both sides of the wire.
//!
//! ## Robustness
//!
//! The serving path is hardened for hostile traffic:
//!
//! * **Frame-size limit** (`max_line_bytes`): request lines are framed by
//!   a bounded reader; an oversized line gets `ERR line too long` and the
//!   connection resynchronizes at the next newline — no unbounded
//!   allocation.
//! * **Read deadline** (`read_timeout_ms`): a request line must complete
//!   within the deadline of its first byte (slow-loris guard); idle
//!   connections are unaffected.
//! * **Write deadline** (`write_timeout_ms`) and an **overall per-request
//!   deadline** (`request_timeout_ms`): overruns answer
//!   `ERR request deadline exceeded`.
//! * **Load shedding**: when the bounded job queue is full, new
//!   connections get a single `BUSY` line and are closed — the accept
//!   thread never blocks. `BUSY` is retryable: nothing was executed.
//! * Every limit trips a dedicated [`Metrics`] counter (`shed`,
//!   `oversized`, `torn`, `deadline_read`, `deadline_write`,
//!   `deadline_request`), reported by `METRICS`.
//!
//! ## Durability
//!
//! Started with a `data_dir`, the server persists the catalog:
//!
//! * Every `LOAD`/`UNLOAD` is appended to a checksummed **write-ahead
//!   log** (fsync policy: `always` / `every=<n>` / `never`) *before* the
//!   catalog changes.
//! * `SNAPSHOT` writes a checksummed snapshot of every loaded document,
//!   installs it atomically (write-temp → fsync → rename), and rotates to
//!   a fresh WAL segment; `PERSIST` forces the WAL to disk on demand.
//! * On startup the newest valid snapshot is loaded and the WAL chain
//!   replayed; torn record tails are truncated, and a document whose
//!   persisted sections fail their checksums is **quarantined** (dropped
//!   with a reason, reported via `METRICS` and stderr) instead of
//!   aborting the server. See [`Durability`] and the `durable` crate.
//!
//! ## Protocol
//!
//! Two front ends share one port, negotiated from the first byte of the
//! connection (`0xB1` opens a binary frame and can never start a UTF-8
//! text line):
//!
//! * **Text** — one request per line, one response line per request
//!   (`OK ...` or `ERR <message>`), served thread-per-connection.
//! * **Binary** — length-prefixed frames with client-chosen request ids
//!   (see [`wire`]), N-deep pipelining with out-of-order responses, and
//!   the batch verbs `MQUERY`/`MLABEL` that answer many sub-queries
//!   under one catalog snapshot pin. Binary connections are drained by
//!   a small poll-loop multiplexer instead of parking one thread each;
//!   [`BinaryClient`] is the pipelining client side. Responses carry the
//!   exact bytes the text protocol would have written.
//!
//! The text grammar (see [`proto`]):
//!
//! ```text
//! PING                                  liveness probe
//! LOAD <path> [depth]                   parse + label a file, returns id=<n>
//! UNLOAD <doc>                          drop a document
//! LIST                                  loaded documents
//! LABEL <doc> <xpath>                   labels of every match
//! PARENT <doc> <g> <l> <true|false>     rparent() arithmetic (Fig. 6)
//! QUERY <doc> <xpath> [engine]          XPath; engine: tree|ruid|indexed
//! INSERT <doc> <g> <l> <r> <pos> <xml>  insert one node under the labelled parent (MVCC commit)
//! DELETE <doc> <g> <l> <r>              detach the labelled subtree (root rejected)
//! RELABEL <doc>                         repartition/renumber the whole document
//! SCAN <doc> <global>                   storage rows of one rUID area
//! GET <doc> <g> <l> <true|false>        subtree XML of one identifier
//! STATS <doc>                           tree + numbering statistics
//! METRICS [prom]                        per-command counters + latency (or Prometheus text)
//! SNAPSHOT                              install a catalog snapshot, rotate the WAL
//! PERSIST                               fsync the write-ahead log now
//! TRACE [on|off|<threshold-ms>]         per-request tracing state / slow threshold
//! SLOWLOG [n]                           newest n captured slow requests with span timings
//! PROMOTE                               promote a follower replica to leader
//! SHUTDOWN                              graceful stop
//! ```
//!
//! ## Replication
//!
//! Started with `--follow <leader-addr>`, the server runs as a
//! **follower replica**: it bootstraps from the leader's newest snapshot,
//! tails the leader's WAL over the binary protocol (`REPL HELLO` /
//! `REPL SNAPSHOT` / `REPL TAIL` / `REPL ACK`), applies each shipped
//! record through the same MVCC path as local recovery, serves reads,
//! and rejects writes with a redirect to the leader. Sequence
//! discontinuities or torn records force a clean re-bootstrap — the
//! follower never serves a hybrid state. `PROMOTE` detaches the follower
//! and flips it to leader. See the `replication` module and DESIGN.md §16.
//!
//! ## Observability
//!
//! * [`Tracer`] — per-request trace ids and span timings
//!   (parse → lookup → eval → wal → write) with a ring-buffer slow-query
//!   log (`TRACE` / `SLOWLOG`). Off by default; one relaxed atomic load
//!   per request while off.
//! * `METRICS prom` and the optional `serve --metrics-addr` plain-HTTP
//!   endpoint expose every counter, gauge and histogram in the Prometheus
//!   text format (cumulative `_bucket{le=...}` plus `_sum`/`_count`),
//!   including thread-pool queue depth, work-stealing counts, WAL
//!   append/fsync/snapshot timings and per-axis XPath step counters.
//!
//! ## Example
//!
//! ```no_run
//! use ruid_service::{Client, Server, ServerConfig};
//!
//! let handle = Server::start(ServerConfig::default()).unwrap();
//! let mut client = Client::connect(handle.addr()).unwrap();
//! let resp = client.request("LOAD data/auction.xml").unwrap();
//! assert!(resp.starts_with("OK id="));
//! client.request("QUERY 1 //item/name").unwrap();
//! client.request("SHUTDOWN").unwrap();
//! handle.join();
//! ```

mod catalog;
mod client;
mod fault;
mod framing;
mod metrics;
mod mux;
mod persist;
mod prom;
pub mod proto;
mod replication;
mod server;
mod trace;
pub mod wire;

pub use catalog::{Catalog, DocId, LoadedDoc};
pub use client::{client_retries_total, BinaryClient, Client, RetryPolicy};
// Durability building blocks, re-exported so embedders configure the
// server without naming the `durable` crate directly.
pub use durable::{FsyncPolicy, WalOp};
pub use fault::{Fault, FaultPlan};
pub use metrics::{Command, CommandSummary, Histogram, Metrics, Protocol, ValueHistogram};
pub use persist::{Durability, DurabilityStats, RecoverySummary};
pub use replication::{FollowerAck, ReplSample, ReplState};
pub use trace::{RequestTrace, SlowEntry, Span, Tracer, SPANS, SPAN_COUNT};
// The pool moved to the reusable `par` crate so the build pipeline and the
// server share one threading layer; re-exported here for compatibility.
pub use par::{PoolClosed, SubmitError, ThreadPool};
pub use server::{run_query, Server, ServerConfig, ServerHandle};
