//! The sharded document catalog.
//!
//! Documents are spread over `N` shards by `id % N`; each shard guards its
//! own `HashMap` with an `RwLock`. The values are `Arc<LoadedDoc>`, so a
//! read (the hot path) holds the shared lock only long enough to clone the
//! `Arc` — query evaluation itself runs entirely outside any lock, which
//! is sound because answering structural queries from rUID labels never
//! mutates the scheme (Lemma 1: `rparent` is pure arithmetic over the
//! label and table *K*).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

use durable::{Applied, DocState, WalOp};
use par::Executor;
use plan::PathSummary;
use ruid_core::{PartitionConfig, Ruid2Scheme};
use schemes::ancestry::AncestryScheme;
use schemes::interval::{document_from_stream, IntervalScheme};
use schemes::NumberingScheme;
use xmldom::{DocOrder, Document, NodeId};
use xmlstore::{MemPager, XmlStore};
use xpath::NameIndex;

/// Identifies one loaded document within a [`Catalog`].
pub type DocId = u64;

/// Everything the service needs to answer queries about one document:
/// the parsed tree, its rUID numbering, the element-name index, and the
/// identifier-sorted storage rows.
pub struct LoadedDoc {
    /// Where the document came from (a path, or `"<inline>"`).
    pub path: String,
    /// The parsed tree.
    pub doc: Document,
    /// The rUID numbering (labels, table K, axis routines).
    pub scheme: Ruid2Scheme,
    /// The nested-set numbering backing the `interval` query engine.
    pub interval: IntervalScheme,
    /// The compact-ancestry numbering backing the `ancestry` engine.
    pub ancestry: AncestryScheme,
    /// Element-name index backing the `indexed` query engine.
    pub index: NameIndex,
    /// Precomputed document-order ranks: query engines sort result unions
    /// by integer key instead of per-comparison label arithmetic.
    pub order: DocOrder,
    /// Path summary (DataGuide) backing the `planned` query engine and
    /// `EXPLAIN` — like the name index and order ranks, a pure derivation
    /// of the tree, rebuilt at load time and after crash recovery.
    pub summary: PathSummary,
    /// Identifier-keyed storage rows (`SCAN` serves from here); optional
    /// because pure labeling workloads don't need the extra copy.
    pub store: Option<XmlStore<MemPager>>,
    /// Result-cache generation: the WAL sequence number of the operation
    /// that established this document state (or the doc id when running
    /// without durability). Any logged update produces a new generation,
    /// which invalidates cached planned-query responses.
    pub generation: u64,
}

impl LoadedDoc {
    /// Parses `text` and builds the full bundle with a by-depth `depth`
    /// partition (and an in-memory store unless `with_store` is false).
    pub fn build(
        path: &str,
        text: &str,
        depth: usize,
        with_store: bool,
    ) -> Result<LoadedDoc, String> {
        LoadedDoc::build_with(path, text, depth, with_store, &Executor::new(1))
    }

    /// [`LoadedDoc::build`] with an explicit thread budget: the rUID
    /// area labeling and the name index fan out over `exec` (the results
    /// are identical to the sequential build for any thread count).
    pub fn build_with(
        path: &str,
        text: &str,
        depth: usize,
        with_store: bool,
        exec: &Executor,
    ) -> Result<LoadedDoc, String> {
        let doc =
            Document::parse(text).map_err(|e| format!("parse error in {path}: {e}"))?;
        LoadedDoc::build_from_doc(path, doc, depth, with_store, exec)
    }

    /// Builds the full bundle around an already-constructed tree — the
    /// shared tail of [`LoadedDoc::build_with`] (XML text) and
    /// [`LoadedDoc::build_stream`] (flat events).
    pub fn build_from_doc(
        path: &str,
        doc: Document,
        depth: usize,
        with_store: bool,
        exec: &Executor,
    ) -> Result<LoadedDoc, String> {
        if doc.root_element().is_none() {
            return Err(format!("{path}: document has no root element"));
        }
        let scheme = Ruid2Scheme::try_build_with(&doc, &PartitionConfig::by_depth(depth), exec)
            .map_err(|e| e.to_string())?;
        let interval = IntervalScheme::build(&doc);
        let ancestry = AncestryScheme::build(&doc);
        let index = NameIndex::build_with(&doc, exec);
        let order = DocOrder::build(&doc);
        let summary = PathSummary::build(&doc);
        let store = with_store.then(|| {
            let mut store = XmlStore::in_memory();
            store.load_document(&doc, &scheme);
            store
        });
        Ok(LoadedDoc {
            path: path.to_owned(),
            doc,
            scheme,
            interval,
            ancestry,
            index,
            order,
            summary,
            store,
            generation: 0,
        })
    }

    /// Builds the bundle from an interval-encoded flat event stream
    /// (the `LOADSTREAM` verb) — no XML text is ever materialized.
    pub fn build_stream(
        name: &str,
        events: &str,
        depth: usize,
        with_store: bool,
        exec: &Executor,
    ) -> Result<LoadedDoc, String> {
        let doc = document_from_stream(events).map_err(|e| format!("stream {name}: {e}"))?;
        LoadedDoc::build_from_doc(name, doc, depth, with_store, exec)
    }

    /// Rebuilds the serving bundle around a document and numbering that
    /// recovery already reconstructed (snapshot + WAL replay). The name
    /// index, document order, path summary and optional store are pure
    /// derivations of the tree, so recomputing them here keeps the
    /// durable format down to what cannot be re-derived.
    pub fn from_recovered(
        path: String,
        doc: Document,
        scheme: Ruid2Scheme,
        with_store: bool,
    ) -> LoadedDoc {
        let interval = IntervalScheme::build(&doc);
        let ancestry = AncestryScheme::build(&doc);
        let index = NameIndex::build(&doc);
        let order = DocOrder::build(&doc);
        let summary = PathSummary::build(&doc);
        let store = with_store.then(|| {
            let mut store = XmlStore::in_memory();
            store.load_document(&doc, &scheme);
            store
        });
        LoadedDoc { path, doc, scheme, interval, ancestry, index, order, summary, store, generation: 0 }
    }

    /// Copy-on-write structural update: clones the tree and numbering,
    /// applies `op` through the *same* [`DocState`] apply path WAL replay
    /// runs (so a replayed catalog is byte-identical to the live one),
    /// patches the name index and path summary incrementally where the
    /// structure allows (falling back to a rebuild when a path appears or
    /// empties), and returns a brand-new bundle stamped `generation`.
    ///
    /// `self` is never touched: readers holding the old `Arc` keep
    /// answering from their pinned snapshot while the caller swaps the
    /// new bundle into the catalog.
    pub fn apply_update(
        &self,
        op: &WalOp,
        generation: u64,
    ) -> Result<(LoadedDoc, Applied), String> {
        if let WalOp::Delete { label, .. } = op {
            // Deleting the root element would leave nothing to serve;
            // reject it before anything reaches the WAL.
            if self.scheme.node_of(label) == self.doc.root_element() {
                return Err(format!("{label} labels the root element; cannot delete"));
            }
        }
        let mut state = DocState {
            id: 0, // apply_detailed never reads the catalog id
            path: self.path.clone(),
            config: *self.scheme.config(),
            with_store: self.store.is_some(),
            doc: self.doc.clone(),
            scheme: self.scheme.clone(),
        };
        let applied = state.apply_detailed(op)?;
        let DocState { doc, scheme, .. } = state;
        // Order ranks shift globally on any structural change: rebuild
        // (one pre-order pass). The name index and summary patch in
        // O(affected) — NodeIds are arena-stable across the clone, so the
        // old member lists stay valid for untouched nodes.
        let order = DocOrder::build(&doc);
        let mut index = self.index.clone();
        let mut summary = self.summary.clone();
        // The interval and ancestry numberings ride the same commit: they
        // go through their own incremental on_insert/on_delete hooks so a
        // long update sequence exercises the maintenance path rather than
        // silently rebuilding from scratch each commit.
        let mut interval = self.interval.clone();
        let mut ancestry = self.ancestry.clone();
        match &applied {
            Applied::Inserted { node, .. } => {
                index.patch_insert(&doc, &order, *node);
                if !summary.patch_insert(&doc, &order, *node) {
                    summary = PathSummary::build(&doc);
                }
                interval.on_insert(&doc, *node);
                ancestry.on_insert(&doc, *node);
            }
            Applied::Deleted { elements, parent, root, .. } => {
                index.patch_delete(elements);
                let removed: Vec<NodeId> = elements.iter().map(|&(_, n)| n).collect();
                if !summary.patch_delete(&removed) {
                    summary = PathSummary::build(&doc);
                }
                interval.on_delete(&doc, *parent, *root);
                ancestry.on_delete(&doc, *parent, *root);
            }
            // Repartitioning renumbers rUID labels but leaves the tree —
            // and every tree-derived index — untouched.
            Applied::Repartitioned { .. } => {}
        }
        // The store keys rows by label, which updates (and especially
        // relabels) rewrite; reload it from the new tree.
        let store = self.store.as_ref().map(|_| {
            let mut store = XmlStore::in_memory();
            store.load_document(&doc, &scheme);
            store
        });
        Ok((
            LoadedDoc {
                path: self.path.clone(),
                doc,
                scheme,
                interval,
                ancestry,
                index,
                order,
                summary,
                store,
                generation,
            },
            applied,
        ))
    }

    /// Reads and builds from a file on disk.
    pub fn from_file(path: &str, depth: usize, with_store: bool) -> Result<LoadedDoc, String> {
        LoadedDoc::from_file_with(path, depth, with_store, &Executor::new(1))
    }

    /// [`LoadedDoc::from_file`] with an explicit thread budget.
    pub fn from_file_with(
        path: &str,
        depth: usize,
        with_store: bool,
        exec: &Executor,
    ) -> Result<LoadedDoc, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        LoadedDoc::build_with(path, &text, depth, with_store, exec)
    }
}

/// A sharded `DocId -> Arc<LoadedDoc>` map with MVCC generations.
///
/// Readers clone an `Arc<LoadedDoc>` and evaluate entirely outside any
/// lock — that Arc *is* their snapshot. Writers build a new bundle
/// copy-on-write and swap it in under the shard's write lock, so a commit
/// never blocks in-flight readers; the `generation` stamped on each bundle
/// orders commits process-wide and keys the result cache.
pub struct Catalog {
    shards: Vec<RwLock<HashMap<DocId, Arc<LoadedDoc>>>>,
    next_id: AtomicU64,
    /// Process-wide monotonic generation counter: every committed state
    /// (load, insert, delete, relabel — durable or not) draws a unique,
    /// increasing value, so a cached response can never alias across
    /// commits or WAL segment rotations.
    generation: AtomicU64,
    /// Serializes structural writers (INSERT/DELETE/RELABEL/UNLOAD):
    /// copy-on-write staging from a stale base would silently drop the
    /// other writer's commit. Lock order: this lock first, then the
    /// durability mutex inside `log_with`, then the shard write lock.
    write_lock: Mutex<()>,
}

impl Catalog {
    /// Creates a catalog with `shards` independent locks (min 1).
    pub fn new(shards: usize) -> Catalog {
        let shards = shards.max(1);
        Catalog {
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            next_id: AtomicU64::new(1),
            generation: AtomicU64::new(0),
            write_lock: Mutex::new(()),
        }
    }

    /// Draws the next process-wide generation (first call returns 1).
    pub fn next_generation(&self) -> u64 {
        self.generation.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The highest generation handed out so far — the `ruid_generation`
    /// gauge.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Enters the structural-writer critical section. Readers never take
    /// this; concurrent writers to *any* document serialize here so each
    /// copy-on-write starts from the latest committed state.
    pub fn begin_write(&self) -> MutexGuard<'_, ()> {
        self.write_lock.lock().unwrap()
    }

    fn shard(&self, id: DocId) -> &RwLock<HashMap<DocId, Arc<LoadedDoc>>> {
        &self.shards[(id % self.shards.len() as u64) as usize]
    }

    /// Number of shards (fixed at construction).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Registers a document under a fresh id. Takes one shard's write lock.
    pub fn insert(&self, doc: LoadedDoc) -> DocId {
        let id = self.reserve_id();
        self.insert_with_id(id, doc);
        id
    }

    /// Hands out a fresh id without inserting anything — the durable load
    /// path reserves the id first so the WAL record and the catalog entry
    /// agree on it even when the insert happens later.
    pub fn reserve_id(&self) -> DocId {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Registers a document under a caller-chosen id (recovery replays
    /// historical ids). Keeps the id counter ahead of every id ever seen,
    /// so post-recovery loads never collide.
    pub fn insert_with_id(&self, id: DocId, doc: LoadedDoc) {
        self.next_id.fetch_max(id + 1, Ordering::Relaxed);
        self.shard(id).write().unwrap().insert(id, Arc::new(doc));
    }

    /// Raises the id counter to at least `next` — recovery calls this so
    /// ids of unloaded (or quarantined) documents are never reused.
    pub fn ensure_next_id(&self, next: DocId) {
        self.next_id.fetch_max(next, Ordering::Relaxed);
    }

    /// `(id, Arc)` of every loaded document, ascending by id — the
    /// snapshot writer borrows the trees through these Arcs.
    pub fn snapshot_docs(&self) -> Vec<(DocId, Arc<LoadedDoc>)> {
        let mut all: Vec<(DocId, Arc<LoadedDoc>)> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .unwrap()
                    .iter()
                    .map(|(&id, d)| (id, Arc::clone(d)))
                    .collect::<Vec<_>>()
            })
            .collect();
        all.sort_unstable_by_key(|&(id, _)| id);
        all
    }

    /// Fetches a document for reading. Takes one shard's read lock only
    /// long enough to clone the `Arc`.
    pub fn get(&self, id: DocId) -> Option<Arc<LoadedDoc>> {
        self.shard(id).read().unwrap().get(&id).cloned()
    }

    /// Swaps in a new generation of an already-loaded document. Takes one
    /// shard's write lock only for the pointer swap; readers holding the
    /// previous `Arc` are untouched. Returns `false` (and installs
    /// nothing) when the document was unloaded in the meantime.
    pub fn replace(&self, id: DocId, doc: LoadedDoc) -> bool {
        let mut shard = self.shard(id).write().unwrap();
        match shard.entry(id) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                e.insert(Arc::new(doc));
                true
            }
            std::collections::hash_map::Entry::Vacant(_) => false,
        }
    }

    /// Drops a document. Takes one shard's write lock.
    pub fn remove(&self, id: DocId) -> bool {
        self.shard(id).write().unwrap().remove(&id).is_some()
    }

    /// All loaded ids, ascending.
    pub fn ids(&self) -> Vec<DocId> {
        let mut ids: Vec<DocId> = self
            .shards
            .iter()
            .flat_map(|s| s.read().unwrap().keys().copied().collect::<Vec<_>>())
            .collect();
        ids.sort_unstable();
        ids
    }

    /// `(id, path)` of every loaded document, ascending by id.
    pub fn entries(&self) -> Vec<(DocId, String)> {
        let mut all: Vec<(DocId, String)> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .unwrap()
                    .iter()
                    .map(|(&id, d)| (id, d.path.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        all.sort_unstable_by_key(|&(id, _)| id);
        all
    }

    /// Number of loaded documents.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().unwrap().len()).sum()
    }

    /// True when nothing is loaded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(path: &str) -> LoadedDoc {
        LoadedDoc::build(path, "<a><b/><c><d/></c></a>", 2, true).unwrap()
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let catalog = Catalog::new(4);
        let id = catalog.insert(tiny("one.xml"));
        assert_eq!(catalog.get(id).unwrap().path, "one.xml");
        assert_eq!(catalog.len(), 1);
        assert!(catalog.remove(id));
        assert!(!catalog.remove(id));
        assert!(catalog.get(id).is_none());
        assert!(catalog.is_empty());
    }

    #[test]
    fn ids_are_fresh_and_sorted() {
        let catalog = Catalog::new(3);
        let a = catalog.insert(tiny("a.xml"));
        let b = catalog.insert(tiny("b.xml"));
        let c = catalog.insert(tiny("c.xml"));
        assert!(a < b && b < c, "ids must be fresh and increasing");
        assert_eq!(catalog.ids(), vec![a, b, c]);
        assert_eq!(
            catalog.entries().into_iter().map(|(_, p)| p).collect::<Vec<_>>(),
            vec!["a.xml", "b.xml", "c.xml"]
        );
    }

    #[test]
    fn build_rejects_bad_input() {
        assert!(LoadedDoc::build("x", "<a><b></a>", 2, false).is_err());
        assert!(LoadedDoc::from_file("/nonexistent/x.xml", 2, false).is_err());
    }

    #[test]
    fn cow_update_leaves_the_old_snapshot_untouched() {
        let catalog = Catalog::new(2);
        let id = catalog.insert(tiny("one.xml"));
        let before = catalog.get(id).unwrap();
        let nodes_before = before.doc.node_count();

        let root_label = before.scheme.label_of(before.doc.root_element().unwrap());
        let op = WalOp::Insert {
            doc_id: id,
            parent: root_label,
            position: 0,
            content: durable::NodeContent::Element { name: "b".into(), attributes: vec![] },
        };
        let generation = catalog.next_generation();
        let (next, applied) = before.apply_update(&op, generation).unwrap();
        let Applied::Inserted { node, .. } = applied else { panic!("{applied:?}") };
        assert!(next.doc.element_name(node).is_some());
        assert_eq!(next.generation, generation);
        assert!(catalog.replace(id, next));

        // The reader's pinned Arc still sees the pre-update tree; a fresh
        // get sees the new generation with one more node.
        assert_eq!(before.doc.node_count(), nodes_before);
        let after = catalog.get(id).unwrap();
        assert_eq!(after.doc.node_count(), nodes_before + 1);
        assert_eq!(after.generation, generation);
        // Patched derivations match from-scratch rebuilds.
        assert_eq!(
            after.summary.canonical(&after.doc),
            plan::PathSummary::build(&after.doc).canonical(&after.doc),
        );
        assert_eq!(
            after.index.nodes_named(&after.doc, "b"),
            NameIndex::build(&after.doc).nodes_named(&after.doc, "b"),
        );
        // Replace after unload installs nothing.
        assert!(catalog.remove(id));
        let orphan = tiny("gone.xml");
        assert!(!catalog.replace(id, orphan));
        assert!(catalog.get(id).is_none());
    }

    #[test]
    fn deleting_the_root_element_is_rejected() {
        let loaded = tiny("t.xml");
        let root_label = loaded.scheme.label_of(loaded.doc.root_element().unwrap());
        let op = WalOp::Delete { doc_id: 1, label: root_label };
        let err = match loaded.apply_update(&op, 1) {
            Err(e) => e,
            Ok(_) => panic!("root delete must be rejected"),
        };
        assert!(err.contains("root element"), "{err}");
    }

    #[test]
    fn generations_are_unique_and_increasing() {
        let catalog = Catalog::new(1);
        let a = catalog.next_generation();
        let b = catalog.next_generation();
        assert!(0 < a && a < b);
        assert_eq!(catalog.generation(), b);
    }

    #[test]
    fn bundle_is_consistent() {
        let loaded = tiny("t.xml");
        let root = loaded.doc.root_element().unwrap();
        // Scheme labels resolve back to nodes.
        let label = loaded.scheme.label_of(root);
        assert_eq!(loaded.scheme.node_of(&label), Some(root));
        // Store has one row per node.
        let store = loaded.store.as_ref().unwrap();
        assert_eq!(store.len(), loaded.doc.descendants(root).count());
        // Name index sees the elements.
        assert_eq!(loaded.index.nodes_named(&loaded.doc, "d").len(), 1);
    }
}
