//! The sharded document catalog.
//!
//! Documents are spread over `N` shards by `id % N`; each shard guards its
//! own `HashMap` with an `RwLock`. The values are `Arc<LoadedDoc>`, so a
//! read (the hot path) holds the shared lock only long enough to clone the
//! `Arc` — query evaluation itself runs entirely outside any lock, which
//! is sound because answering structural queries from rUID labels never
//! mutates the scheme (Lemma 1: `rparent` is pure arithmetic over the
//! label and table *K*).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use par::Executor;
use plan::PathSummary;
use ruid_core::{PartitionConfig, Ruid2Scheme};
#[cfg(test)]
use schemes::NumberingScheme;
use xmldom::{DocOrder, Document};
use xmlstore::{MemPager, XmlStore};
use xpath::NameIndex;

/// Identifies one loaded document within a [`Catalog`].
pub type DocId = u64;

/// Everything the service needs to answer queries about one document:
/// the parsed tree, its rUID numbering, the element-name index, and the
/// identifier-sorted storage rows.
pub struct LoadedDoc {
    /// Where the document came from (a path, or `"<inline>"`).
    pub path: String,
    /// The parsed tree.
    pub doc: Document,
    /// The rUID numbering (labels, table K, axis routines).
    pub scheme: Ruid2Scheme,
    /// Element-name index backing the `indexed` query engine.
    pub index: NameIndex,
    /// Precomputed document-order ranks: query engines sort result unions
    /// by integer key instead of per-comparison label arithmetic.
    pub order: DocOrder,
    /// Path summary (DataGuide) backing the `planned` query engine and
    /// `EXPLAIN` — like the name index and order ranks, a pure derivation
    /// of the tree, rebuilt at load time and after crash recovery.
    pub summary: PathSummary,
    /// Identifier-keyed storage rows (`SCAN` serves from here); optional
    /// because pure labeling workloads don't need the extra copy.
    pub store: Option<XmlStore<MemPager>>,
    /// Result-cache generation: the WAL sequence number of the operation
    /// that established this document state (or the doc id when running
    /// without durability). Any logged update produces a new generation,
    /// which invalidates cached planned-query responses.
    pub generation: u64,
}

impl LoadedDoc {
    /// Parses `text` and builds the full bundle with a by-depth `depth`
    /// partition (and an in-memory store unless `with_store` is false).
    pub fn build(
        path: &str,
        text: &str,
        depth: usize,
        with_store: bool,
    ) -> Result<LoadedDoc, String> {
        LoadedDoc::build_with(path, text, depth, with_store, &Executor::new(1))
    }

    /// [`LoadedDoc::build`] with an explicit thread budget: the rUID
    /// area labeling and the name index fan out over `exec` (the results
    /// are identical to the sequential build for any thread count).
    pub fn build_with(
        path: &str,
        text: &str,
        depth: usize,
        with_store: bool,
        exec: &Executor,
    ) -> Result<LoadedDoc, String> {
        let doc =
            Document::parse(text).map_err(|e| format!("parse error in {path}: {e}"))?;
        if doc.root_element().is_none() {
            return Err(format!("{path}: document has no root element"));
        }
        let scheme = Ruid2Scheme::try_build_with(&doc, &PartitionConfig::by_depth(depth), exec)
            .map_err(|e| e.to_string())?;
        let index = NameIndex::build_with(&doc, exec);
        let order = DocOrder::build(&doc);
        let summary = PathSummary::build(&doc);
        let store = with_store.then(|| {
            let mut store = XmlStore::in_memory();
            store.load_document(&doc, &scheme);
            store
        });
        Ok(LoadedDoc {
            path: path.to_owned(),
            doc,
            scheme,
            index,
            order,
            summary,
            store,
            generation: 0,
        })
    }

    /// Rebuilds the serving bundle around a document and numbering that
    /// recovery already reconstructed (snapshot + WAL replay). The name
    /// index, document order, path summary and optional store are pure
    /// derivations of the tree, so recomputing them here keeps the
    /// durable format down to what cannot be re-derived.
    pub fn from_recovered(
        path: String,
        doc: Document,
        scheme: Ruid2Scheme,
        with_store: bool,
    ) -> LoadedDoc {
        let index = NameIndex::build(&doc);
        let order = DocOrder::build(&doc);
        let summary = PathSummary::build(&doc);
        let store = with_store.then(|| {
            let mut store = XmlStore::in_memory();
            store.load_document(&doc, &scheme);
            store
        });
        LoadedDoc { path, doc, scheme, index, order, summary, store, generation: 0 }
    }

    /// Reads and builds from a file on disk.
    pub fn from_file(path: &str, depth: usize, with_store: bool) -> Result<LoadedDoc, String> {
        LoadedDoc::from_file_with(path, depth, with_store, &Executor::new(1))
    }

    /// [`LoadedDoc::from_file`] with an explicit thread budget.
    pub fn from_file_with(
        path: &str,
        depth: usize,
        with_store: bool,
        exec: &Executor,
    ) -> Result<LoadedDoc, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        LoadedDoc::build_with(path, &text, depth, with_store, exec)
    }
}

/// A sharded `DocId -> Arc<LoadedDoc>` map.
pub struct Catalog {
    shards: Vec<RwLock<HashMap<DocId, Arc<LoadedDoc>>>>,
    next_id: AtomicU64,
}

impl Catalog {
    /// Creates a catalog with `shards` independent locks (min 1).
    pub fn new(shards: usize) -> Catalog {
        let shards = shards.max(1);
        Catalog {
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            next_id: AtomicU64::new(1),
        }
    }

    fn shard(&self, id: DocId) -> &RwLock<HashMap<DocId, Arc<LoadedDoc>>> {
        &self.shards[(id % self.shards.len() as u64) as usize]
    }

    /// Number of shards (fixed at construction).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Registers a document under a fresh id. Takes one shard's write lock.
    pub fn insert(&self, doc: LoadedDoc) -> DocId {
        let id = self.reserve_id();
        self.insert_with_id(id, doc);
        id
    }

    /// Hands out a fresh id without inserting anything — the durable load
    /// path reserves the id first so the WAL record and the catalog entry
    /// agree on it even when the insert happens later.
    pub fn reserve_id(&self) -> DocId {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Registers a document under a caller-chosen id (recovery replays
    /// historical ids). Keeps the id counter ahead of every id ever seen,
    /// so post-recovery loads never collide.
    pub fn insert_with_id(&self, id: DocId, doc: LoadedDoc) {
        self.next_id.fetch_max(id + 1, Ordering::Relaxed);
        self.shard(id).write().unwrap().insert(id, Arc::new(doc));
    }

    /// Raises the id counter to at least `next` — recovery calls this so
    /// ids of unloaded (or quarantined) documents are never reused.
    pub fn ensure_next_id(&self, next: DocId) {
        self.next_id.fetch_max(next, Ordering::Relaxed);
    }

    /// `(id, Arc)` of every loaded document, ascending by id — the
    /// snapshot writer borrows the trees through these Arcs.
    pub fn snapshot_docs(&self) -> Vec<(DocId, Arc<LoadedDoc>)> {
        let mut all: Vec<(DocId, Arc<LoadedDoc>)> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .unwrap()
                    .iter()
                    .map(|(&id, d)| (id, Arc::clone(d)))
                    .collect::<Vec<_>>()
            })
            .collect();
        all.sort_unstable_by_key(|&(id, _)| id);
        all
    }

    /// Fetches a document for reading. Takes one shard's read lock only
    /// long enough to clone the `Arc`.
    pub fn get(&self, id: DocId) -> Option<Arc<LoadedDoc>> {
        self.shard(id).read().unwrap().get(&id).cloned()
    }

    /// Drops a document. Takes one shard's write lock.
    pub fn remove(&self, id: DocId) -> bool {
        self.shard(id).write().unwrap().remove(&id).is_some()
    }

    /// All loaded ids, ascending.
    pub fn ids(&self) -> Vec<DocId> {
        let mut ids: Vec<DocId> = self
            .shards
            .iter()
            .flat_map(|s| s.read().unwrap().keys().copied().collect::<Vec<_>>())
            .collect();
        ids.sort_unstable();
        ids
    }

    /// `(id, path)` of every loaded document, ascending by id.
    pub fn entries(&self) -> Vec<(DocId, String)> {
        let mut all: Vec<(DocId, String)> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .unwrap()
                    .iter()
                    .map(|(&id, d)| (id, d.path.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        all.sort_unstable_by_key(|&(id, _)| id);
        all
    }

    /// Number of loaded documents.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().unwrap().len()).sum()
    }

    /// True when nothing is loaded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(path: &str) -> LoadedDoc {
        LoadedDoc::build(path, "<a><b/><c><d/></c></a>", 2, true).unwrap()
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let catalog = Catalog::new(4);
        let id = catalog.insert(tiny("one.xml"));
        assert_eq!(catalog.get(id).unwrap().path, "one.xml");
        assert_eq!(catalog.len(), 1);
        assert!(catalog.remove(id));
        assert!(!catalog.remove(id));
        assert!(catalog.get(id).is_none());
        assert!(catalog.is_empty());
    }

    #[test]
    fn ids_are_fresh_and_sorted() {
        let catalog = Catalog::new(3);
        let a = catalog.insert(tiny("a.xml"));
        let b = catalog.insert(tiny("b.xml"));
        let c = catalog.insert(tiny("c.xml"));
        assert!(a < b && b < c, "ids must be fresh and increasing");
        assert_eq!(catalog.ids(), vec![a, b, c]);
        assert_eq!(
            catalog.entries().into_iter().map(|(_, p)| p).collect::<Vec<_>>(),
            vec!["a.xml", "b.xml", "c.xml"]
        );
    }

    #[test]
    fn build_rejects_bad_input() {
        assert!(LoadedDoc::build("x", "<a><b></a>", 2, false).is_err());
        assert!(LoadedDoc::from_file("/nonexistent/x.xml", 2, false).is_err());
    }

    #[test]
    fn bundle_is_consistent() {
        let loaded = tiny("t.xml");
        let root = loaded.doc.root_element().unwrap();
        // Scheme labels resolve back to nodes.
        let label = loaded.scheme.label_of(root);
        assert_eq!(loaded.scheme.node_of(&label), Some(root));
        // Store has one row per node.
        let store = loaded.store.as_ref().unwrap();
        assert_eq!(store.len(), loaded.doc.descendants(root).count());
        // Name index sees the elements.
        assert_eq!(loaded.index.nodes_named(&loaded.doc, "d").len(), 1);
    }
}
