//! Lock-free service observability: per-command request and error
//! counters plus fixed-bucket latency histograms.
//!
//! Everything is an `AtomicU64`, so recording on the hot path is a handful
//! of relaxed atomic adds — no locks, no allocation. Percentiles are
//! computed on demand from the buckets (each bucket spans a power of two
//! of nanoseconds), which is exact enough for p50/p95/p99 reporting and
//! costs nothing when nobody asks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Bucket count: bucket `i` holds samples with `ns < 2^(i+1)` (the last
/// bucket is open-ended). 2^40 ns ≈ 18 minutes, far beyond any request.
const BUCKETS: usize = 40;

/// A fixed-bucket latency histogram with power-of-two nanosecond buckets.
///
/// Alongside the buckets it tracks the exact sum and the observed min/max,
/// so quantile estimates can be clamped to the real sample range (a
/// constant-latency workload reports its exact latency, not a bucket
/// bound).
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Number of buckets (fixed).
    pub const BUCKET_COUNT: usize = BUCKETS;

    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    fn bucket_of(ns: u64) -> usize {
        // 0 and 1 ns land in bucket 0; doubling thereafter.
        (63 - ns.max(1).leading_zeros() as usize).min(BUCKETS - 1)
    }

    /// The exclusive upper bound of bucket `i` in nanoseconds, or `None`
    /// for an open-ended final bucket. `checked_shl` keeps this correct
    /// even if `BUCKETS` ever grows past 63.
    pub fn bucket_upper_ns(i: usize) -> Option<u64> {
        if i + 1 >= BUCKETS {
            return None; // final bucket is open-ended by definition
        }
        1u64.checked_shl(i as u32 + 1)
    }

    /// Records one sample.
    pub fn record(&self, elapsed: Duration) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.buckets[Self::bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
        self.min.fetch_min(ns, Ordering::Relaxed);
        self.max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Total number of recorded samples.
    pub fn total(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all recorded samples in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded sample in nanoseconds (0 when empty).
    pub fn min_ns(&self) -> u64 {
        let v = self.min.load(Ordering::Relaxed);
        if v == u64::MAX { 0 } else { v }
    }

    /// Largest recorded sample in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// A snapshot of the raw bucket counts.
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// An estimate (in ns) of the `q`-quantile (`q` in `[0, 1]`), or 0
    /// when empty.
    ///
    /// The estimate is the geometric midpoint of the bucket holding the
    /// quantile rank — the unbiased guess for exponentially-sized buckets
    /// — clamped into the observed `[min, max]` range, so it never
    /// overstates past the largest real sample (the old implementation
    /// returned the bucket's upper bound, up to 2× too high). The
    /// open-ended final bucket reports the observed maximum.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let total = self.total();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen < rank {
                continue;
            }
            let est = match Self::bucket_upper_ns(i) {
                // `i <= 62` here, so the low bound cannot overflow.
                Some(high) => {
                    let low = (1u64 << i).max(1);
                    (((low as f64) * (high as f64)).sqrt()).round() as u64
                }
                // Open-ended (or shift-overflowing) bucket: the observed
                // maximum is the only honest estimate.
                None => self.max_ns(),
            };
            return est.clamp(self.min_ns(), self.max_ns());
        }
        self.max_ns()
    }
}

/// Bucket count of a [`ValueHistogram`]: upper bounds 1, 2, 4, …, 2^15
/// plus the open-ended tail — wide enough for any pipeline depth or
/// batch size the frame caps allow.
const VALUE_BUCKETS: usize = 16;

/// A fixed-bucket histogram over small dimensionless counts (pipeline
/// depths, batch sizes) with power-of-two value buckets: bucket `i`
/// counts samples `v <= 2^i`, the final bucket is open-ended. Same
/// lock-free recording discipline as the latency [`Histogram`].
pub struct ValueHistogram {
    buckets: [AtomicU64; VALUE_BUCKETS],
    sum: AtomicU64,
}

impl Default for ValueHistogram {
    fn default() -> ValueHistogram {
        ValueHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

impl ValueHistogram {
    /// Number of buckets (fixed).
    pub const BUCKET_COUNT: usize = VALUE_BUCKETS;

    /// Creates an empty histogram.
    pub fn new() -> ValueHistogram {
        ValueHistogram::default()
    }

    /// The inclusive upper bound of bucket `i`, or `None` for the
    /// open-ended final bucket.
    pub fn bucket_upper(i: usize) -> Option<u64> {
        (i + 1 < VALUE_BUCKETS).then(|| 1u64 << i)
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        // v <= 2^i  ⇔  i >= bits(v - 1); 0 and 1 land in bucket 0.
        let bucket = (64 - value.saturating_sub(1).leading_zeros() as usize)
            .min(VALUE_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total number of recorded samples.
    pub fn total(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all recorded sample values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// A snapshot of the raw bucket counts.
    pub fn bucket_counts(&self) -> [u64; VALUE_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }
}

/// The protocol front ends the service meters, in counter order (the
/// `ruid_protocol_requests_total` Prometheus family).
pub const PROTOCOLS: [&str; 2] = ["text", "binary"];

/// Selects a per-protocol counter slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// The line-delimited text front end.
    Text = 0,
    /// The length-prefixed binary front end.
    Binary = 1,
}

/// The protocol commands the service meters, in wire order.
///
/// `Invalid` accounts for lines that fail to parse at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Command {
    /// `PING`
    Ping = 0,
    /// `LOAD <path> [depth]`
    Load,
    /// `UNLOAD <doc>`
    Unload,
    /// `LIST`
    List,
    /// `LABEL <doc> <xpath>`
    Label,
    /// `PARENT <doc> <g> <l> <r>`
    Parent,
    /// `QUERY <doc> <xpath> [engine]`
    Query,
    /// `SCAN <doc> <global>`
    Scan,
    /// `GET <doc> <g> <l> <r>`
    Get,
    /// `STATS <doc>`
    Stats,
    /// `METRICS`
    Metrics,
    /// `SNAPSHOT`
    Snapshot,
    /// `PERSIST`
    Persist,
    /// `TRACE [on|off|<threshold-ms>]`
    Trace,
    /// `SLOWLOG [n]`
    Slowlog,
    /// `SHUTDOWN`
    Shutdown,
    /// `EXPLAIN <doc> <xpath>`
    Explain,
    /// `INSERT <doc> <g> <l> <r> <position> <fragment>`
    Insert,
    /// `DELETE <doc> <g> <l> <r>`
    Delete,
    /// `RELABEL <doc>`
    Relabel,
    /// Binary batch verb: one frame of planned queries.
    MQuery,
    /// Binary batch verb: one frame of planned label lookups.
    MLabel,
    /// `PROMOTE` — a follower becomes the leader.
    Promote,
    /// `REPL HELLO` — a follower introduces itself.
    ReplHello,
    /// `REPL SNAPSHOT` — a follower pulls a snapshot image.
    ReplSnapshot,
    /// `REPL TAIL` — a follower polls for committed WAL bytes.
    ReplTail,
    /// `REPL ACK` — a follower reports its applied position.
    ReplAck,
    /// Unparseable input.
    Invalid,
}

/// Every command, aligned with the `repr(usize)` discriminants.
pub const COMMANDS: [Command; 28] = [
    Command::Ping,
    Command::Load,
    Command::Unload,
    Command::List,
    Command::Label,
    Command::Parent,
    Command::Query,
    Command::Scan,
    Command::Get,
    Command::Stats,
    Command::Metrics,
    Command::Snapshot,
    Command::Persist,
    Command::Trace,
    Command::Slowlog,
    Command::Shutdown,
    Command::Explain,
    Command::Insert,
    Command::Delete,
    Command::Relabel,
    Command::MQuery,
    Command::MLabel,
    Command::Promote,
    Command::ReplHello,
    Command::ReplSnapshot,
    Command::ReplTail,
    Command::ReplAck,
    Command::Invalid,
];

impl Command {
    /// The wire keyword (uppercase).
    pub fn name(self) -> &'static str {
        match self {
            Command::Ping => "PING",
            Command::Load => "LOAD",
            Command::Unload => "UNLOAD",
            Command::List => "LIST",
            Command::Label => "LABEL",
            Command::Parent => "PARENT",
            Command::Query => "QUERY",
            Command::Scan => "SCAN",
            Command::Get => "GET",
            Command::Stats => "STATS",
            Command::Metrics => "METRICS",
            Command::Snapshot => "SNAPSHOT",
            Command::Persist => "PERSIST",
            Command::Trace => "TRACE",
            Command::Slowlog => "SLOWLOG",
            Command::Shutdown => "SHUTDOWN",
            Command::Explain => "EXPLAIN",
            Command::Insert => "INSERT",
            Command::Delete => "DELETE",
            Command::Relabel => "RELABEL",
            Command::MQuery => "MQUERY",
            Command::MLabel => "MLABEL",
            Command::Promote => "PROMOTE",
            Command::ReplHello => "REPL-HELLO",
            Command::ReplSnapshot => "REPL-SNAPSHOT",
            Command::ReplTail => "REPL-TAIL",
            Command::ReplAck => "REPL-ACK",
            Command::Invalid => "INVALID",
        }
    }
}

#[derive(Default)]
struct CommandMetrics {
    count: AtomicU64,
    errors: AtomicU64,
    latency: Histogram,
}

/// Per-command counters and histograms for the whole service.
#[derive(Default)]
pub struct Metrics {
    per_command: [CommandMetrics; COMMANDS.len()],
    connections: AtomicU64,
    /// Connections/requests answered `BUSY` (queue full or injected).
    shed: AtomicU64,
    /// Request lines rejected for exceeding the frame-size limit.
    oversized: AtomicU64,
    /// Connections killed because a request line missed the read deadline.
    deadline_read: AtomicU64,
    /// Connections killed because a response write missed its deadline.
    deadline_write: AtomicU64,
    /// Requests whose handling overran the per-request deadline.
    deadline_request: AtomicU64,
    /// Connections that hit EOF mid-line (a torn request from the peer).
    torn: AtomicU64,
    /// XPath location steps evaluated, per axis (`Axis::index` order).
    axis_steps: [AtomicU64; xpath::Axis::COUNT],
    /// Physical plan operators executed, in [`PLAN_OPERATORS`] order.
    plan_ops: [AtomicU64; PLAN_OPERATORS.len()],
    /// Time spent in plan construction (parse excluded, execution
    /// excluded) — the planner must stay negligible next to evaluation.
    planner_time: Histogram,
    /// Committed structural updates, in [`UPDATE_OPS`] order.
    updates: [AtomicU64; UPDATE_OPS.len()],
    /// Request bytes consumed off the wire (both protocols).
    net_read: AtomicU64,
    /// Response bytes written to the wire (both protocols).
    net_written: AtomicU64,
    /// Requests per front end, in [`PROTOCOLS`] order.
    protocol_requests: [AtomicU64; PROTOCOLS.len()],
    /// Frames decoded per multiplexer drain of one connection — the
    /// realized pipelining depth.
    pipeline_depth: ValueHistogram,
    /// Sub-queries per `MQUERY`/`MLABEL` frame.
    batch_size: ValueHistogram,
}

/// The structural update kinds the service counts (the
/// `ruid_updates_total` Prometheus family), in counter order.
pub const UPDATE_OPS: [&str; 3] = ["insert", "delete", "relabel"];

/// The plan-operator kinds the planner metrics distinguish, in counter
/// order: the three physical operators plus the per-step fallback walks
/// delegated to the step-by-step evaluator.
pub const PLAN_OPERATORS: [&str; 4] =
    ["scan", "child-join", "containment-join", "fallback-step"];

/// One command's row of the per-command metrics, the single source both
/// wire renderings and the Prometheus exposition format from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommandSummary {
    /// Which command.
    pub command: Command,
    /// Requests handled.
    pub count: u64,
    /// Requests that answered `ERR`.
    pub errors: u64,
    /// Estimated p50 latency in ns.
    pub p50_ns: u64,
    /// Estimated p95 latency in ns.
    pub p95_ns: u64,
    /// Estimated p99 latency in ns.
    pub p99_ns: u64,
}

impl Metrics {
    /// Creates zeroed metrics.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Records one handled request: which command, whether it failed, and
    /// how long handling took.
    pub fn record(&self, command: Command, is_error: bool, elapsed: Duration) {
        let m = &self.per_command[command as usize];
        m.count.fetch_add(1, Ordering::Relaxed);
        if is_error {
            m.errors.fetch_add(1, Ordering::Relaxed);
        }
        m.latency.record(elapsed);
    }

    /// Counts one accepted connection.
    pub fn record_connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one `BUSY` answer (load shedding or an injected fault).
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one oversized request line.
    pub fn record_oversized(&self) {
        self.oversized.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one read-deadline expiry.
    pub fn record_deadline_read(&self) {
        self.deadline_read.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one write-deadline expiry.
    pub fn record_deadline_write(&self) {
        self.deadline_write.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one per-request deadline overrun.
    pub fn record_deadline_request(&self) {
        self.deadline_request.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one torn request (EOF mid-line).
    pub fn record_torn(&self) {
        self.torn.fetch_add(1, Ordering::Relaxed);
    }

    /// Accumulates request bytes consumed off the wire.
    pub fn add_net_read(&self, bytes: u64) {
        self.net_read.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Accumulates response bytes written to the wire.
    pub fn add_net_written(&self, bytes: u64) {
        self.net_written.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Request bytes consumed so far.
    pub fn net_bytes_read(&self) -> u64 {
        self.net_read.load(Ordering::Relaxed)
    }

    /// Response bytes written so far.
    pub fn net_bytes_written(&self) -> u64 {
        self.net_written.load(Ordering::Relaxed)
    }

    /// The wire-read byte counter itself, for the framing layer to feed
    /// as it consumes.
    pub(crate) fn net_read_counter(&self) -> &AtomicU64 {
        &self.net_read
    }

    /// Counts one request arriving on the given front end.
    pub fn record_protocol_request(&self, protocol: Protocol) {
        self.protocol_requests[protocol as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Requests per front end so far ([`PROTOCOLS`] order).
    pub fn protocol_requests(&self) -> [u64; PROTOCOLS.len()] {
        std::array::from_fn(|i| self.protocol_requests[i].load(Ordering::Relaxed))
    }

    /// Records the number of frames one multiplexer drain decoded on one
    /// connection (only called when at least one frame arrived).
    pub fn record_pipeline_depth(&self, frames: u64) {
        self.pipeline_depth.record(frames);
    }

    /// The realized pipelining-depth histogram.
    pub fn pipeline_depth(&self) -> &ValueHistogram {
        &self.pipeline_depth
    }

    /// Records the sub-query count of one `MQUERY`/`MLABEL` frame.
    pub fn record_batch_size(&self, entries: u64) {
        self.batch_size.record(entries);
    }

    /// The batch-size histogram.
    pub fn batch_size(&self) -> &ValueHistogram {
        &self.batch_size
    }

    /// Accumulates per-axis XPath step counts from one evaluation.
    pub fn record_axis_steps(&self, stats: &xpath::StepStats) {
        for (counter, &steps) in self.axis_steps.iter().zip(stats.steps.iter()) {
            if steps > 0 {
                counter.fetch_add(steps, Ordering::Relaxed);
            }
        }
    }

    /// XPath steps evaluated so far, per axis (`Axis::index` order).
    pub fn axis_steps(&self) -> [u64; xpath::Axis::COUNT] {
        std::array::from_fn(|i| self.axis_steps[i].load(Ordering::Relaxed))
    }

    /// Accumulates the operator counts of one executed plan
    /// (scans, child joins, containment joins, evaluator fallback steps —
    /// [`PLAN_OPERATORS`] order).
    pub fn record_plan_ops(&self, counts: [u64; PLAN_OPERATORS.len()]) {
        for (counter, count) in self.plan_ops.iter().zip(counts) {
            if count > 0 {
                counter.fetch_add(count, Ordering::Relaxed);
            }
        }
    }

    /// Records one plan-construction duration.
    pub fn record_planner_time(&self, elapsed: Duration) {
        self.planner_time.record(elapsed);
    }

    /// Plan operators executed so far ([`PLAN_OPERATORS`] order).
    pub fn plan_ops(&self) -> [u64; PLAN_OPERATORS.len()] {
        std::array::from_fn(|i| self.plan_ops[i].load(Ordering::Relaxed))
    }

    /// Counts one *committed* structural update. `op` is the update's
    /// command (`Insert`, `Delete`, or `Relabel`); anything else is a
    /// caller bug and ignored.
    pub fn record_update(&self, op: Command) {
        let slot = match op {
            Command::Insert => 0,
            Command::Delete => 1,
            Command::Relabel => 2,
            _ => return,
        };
        self.updates[slot].fetch_add(1, Ordering::Relaxed);
    }

    /// Committed structural updates so far ([`UPDATE_OPS`] order).
    pub fn updates(&self) -> [u64; UPDATE_OPS.len()] {
        std::array::from_fn(|i| self.updates[i].load(Ordering::Relaxed))
    }

    /// The plan-construction latency histogram.
    pub fn planner_time(&self) -> &Histogram {
        &self.planner_time
    }

    /// Connections accepted so far.
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// `BUSY` answers so far.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Oversized request lines so far.
    pub fn oversized(&self) -> u64 {
        self.oversized.load(Ordering::Relaxed)
    }

    /// Read-deadline expiries so far.
    pub fn deadline_read(&self) -> u64 {
        self.deadline_read.load(Ordering::Relaxed)
    }

    /// Write-deadline expiries so far.
    pub fn deadline_write(&self) -> u64 {
        self.deadline_write.load(Ordering::Relaxed)
    }

    /// Per-request deadline overruns so far.
    pub fn deadline_request(&self) -> u64 {
        self.deadline_request.load(Ordering::Relaxed)
    }

    /// Torn requests so far.
    pub fn torn(&self) -> u64 {
        self.torn.load(Ordering::Relaxed)
    }

    /// Total requests across all commands.
    pub fn total_requests(&self) -> u64 {
        self.per_command.iter().map(|m| m.count.load(Ordering::Relaxed)).sum()
    }

    /// Total errors across all commands.
    pub fn total_errors(&self) -> u64 {
        self.per_command.iter().map(|m| m.errors.load(Ordering::Relaxed)).sum()
    }

    /// Requests recorded for one command.
    pub fn count_of(&self, command: Command) -> u64 {
        self.per_command[command as usize].count.load(Ordering::Relaxed)
    }

    /// The latency histogram of one command.
    pub fn latency_of(&self, command: Command) -> &Histogram {
        &self.per_command[command as usize].latency
    }

    /// One summary row per command with traffic, in wire order — the
    /// single formatter behind [`Metrics::render_line`],
    /// [`Metrics::render_table`], and the Prometheus exposition, so the
    /// three can never drift apart.
    pub fn command_summaries(&self) -> Vec<CommandSummary> {
        COMMANDS
            .iter()
            .filter_map(|&command| {
                let m = &self.per_command[command as usize];
                let count = m.count.load(Ordering::Relaxed);
                if count == 0 {
                    return None;
                }
                Some(CommandSummary {
                    command,
                    count,
                    errors: m.errors.load(Ordering::Relaxed),
                    p50_ns: m.latency.quantile_ns(0.50),
                    p95_ns: m.latency.quantile_ns(0.95),
                    p99_ns: m.latency.quantile_ns(0.99),
                })
            })
            .collect()
    }

    /// The six robustness counters as `(name, value)` pairs, in the wire
    /// rendering order.
    pub fn robustness_counters(&self) -> [(&'static str, u64); 6] {
        [
            ("shed", self.shed()),
            ("oversized", self.oversized()),
            ("torn", self.torn()),
            ("deadline_read", self.deadline_read()),
            ("deadline_write", self.deadline_write()),
            ("deadline_request", self.deadline_request()),
        ]
    }

    /// The single-line wire rendering served by `METRICS`:
    ///
    /// ```text
    /// OK connections=3 total=17 errors=1 PING=1/0/512/512/512 LOAD=... ...
    /// ```
    ///
    /// Each command segment is `NAME=count/errors/p50ns/p95ns/p99ns`;
    /// commands with no traffic are omitted.
    pub fn render_line(&self) -> String {
        let mut out = format!(
            "connections={} total={} errors={}",
            self.connections(),
            self.total_requests(),
            self.total_errors(),
        );
        for (name, value) in self.robustness_counters() {
            out.push_str(&format!(" {name}={value}"));
        }
        for s in self.command_summaries() {
            out.push_str(&format!(
                " {}={}/{}/{}/{}/{}",
                s.command.name(),
                s.count,
                s.errors,
                s.p50_ns,
                s.p95_ns,
                s.p99_ns,
            ));
        }
        out
    }

    /// A human-readable multi-line table (dumped on server shutdown).
    pub fn render_table(&self) -> String {
        let mut out = format!(
            "{:<10} {:>9} {:>7} {:>12} {:>12} {:>12}\n",
            "command", "count", "errors", "p50", "p95", "p99"
        );
        for s in self.command_summaries() {
            out.push_str(&format!(
                "{:<10} {:>9} {:>7} {:>12} {:>12} {:>12}\n",
                s.command.name(),
                s.count,
                s.errors,
                fmt_ns(s.p50_ns),
                fmt_ns(s.p95_ns),
                fmt_ns(s.p99_ns),
            ));
        }
        out.push_str(&format!(
            "{:<10} {:>9} {:>7}   ({} connections)\n",
            "total",
            self.total_requests(),
            self.total_errors(),
            self.connections(),
        ));
        out.push_str("robustness");
        for (name, value) in self.robustness_counters() {
            out.push_str(&format!(" {name}={value}"));
        }
        out.push('\n');
        out
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("~{ns} ns")
    } else if ns < 1_000_000 {
        format!("~{:.1} µs", ns as f64 / 1_000.0)
    } else {
        format!("~{:.1} ms", ns as f64 / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_double() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 1);
        assert_eq!(Histogram::bucket_of(4), 2);
        assert_eq!(Histogram::bucket_of(1024), 10);
        assert_eq!(Histogram::bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_walk_the_buckets() {
        let h = Histogram::new();
        assert_eq!(h.quantile_ns(0.5), 0, "empty histogram");
        // 90 fast samples (~1 µs), 10 slow (~1 ms).
        for _ in 0..90 {
            h.record(Duration::from_micros(1));
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(1));
        }
        assert_eq!(h.total(), 100);
        // p50 falls in the [512, 1024) bucket; its midpoint (~724) clamps
        // up to the observed minimum of exactly 1 µs.
        assert_eq!(h.quantile_ns(0.50), 1_000, "p50 clamps to the 1 µs samples");
        // p99/p100 fall in the ms bucket [2^19, 2^20); the estimate must
        // stay within that bucket's bounds and the observed range.
        for q in [0.99, 1.0] {
            let est = h.quantile_ns(q);
            assert!((524_288..=1_000_000).contains(&est), "q={q}: {est} out of bounds");
        }
        assert_eq!(h.quantile_ns(0.0), 1_000);
    }

    #[test]
    fn quantile_estimates_never_overstate_past_the_max() {
        // The old implementation returned the bucket upper bound: a
        // constant 600 µs workload reported p50 = 1'048'576 ns (+75%).
        let h = Histogram::new();
        for _ in 0..1000 {
            h.record(Duration::from_micros(600));
        }
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile_ns(q), 600_000, "constant samples are exact at q={q}");
        }
        assert_eq!(h.min_ns(), 600_000);
        assert_eq!(h.max_ns(), 600_000);
        assert_eq!(h.sum_ns(), 600_000_000);
    }

    #[test]
    fn quantile_single_sample_and_empty() {
        let h = Histogram::new();
        assert_eq!(h.sum_ns(), 0);
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.max_ns(), 0);
        assert_eq!(h.quantile_ns(0.99), 0);
        h.record(Duration::from_nanos(12_345));
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile_ns(q), 12_345, "single sample is exact at q={q}");
        }
    }

    #[test]
    fn quantile_geometric_midpoint_bounds_error() {
        // Samples spread across one bucket [65536, 131072): the estimate
        // must land inside the bucket, within sqrt(2)x of any sample.
        let h = Histogram::new();
        for ns in [70_000u64, 90_000, 110_000, 130_000] {
            h.record(Duration::from_nanos(ns));
        }
        let p50 = h.quantile_ns(0.5);
        assert!((70_000..=130_000).contains(&p50), "p50={p50} clamped into observed range");
        let expected_mid = ((65_536f64 * 131_072f64).sqrt()).round() as u64;
        assert_eq!(p50, expected_mid, "midpoint of the containing bucket");
    }

    #[test]
    fn quantile_max_bucket_is_overflow_safe() {
        let h = Histogram::new();
        // u64::MAX ns saturates into the open-ended final bucket; the
        // old `1u64 << BUCKETS`-style return would be fine at 40 buckets
        // but silently wrong past 63 — the estimate now reports the
        // observed max instead of a shifted constant.
        h.record(Duration::from_secs(10_000));
        let ns = 10_000u64 * 1_000_000_000;
        assert_eq!(Histogram::bucket_of(ns), Histogram::BUCKET_COUNT - 1);
        assert_eq!(h.quantile_ns(0.99), ns);
        assert_eq!(Histogram::bucket_upper_ns(Histogram::BUCKET_COUNT - 1), None);
        assert_eq!(Histogram::bucket_upper_ns(0), Some(2));
        assert_eq!(Histogram::bucket_upper_ns(10), Some(2_048));
    }

    #[test]
    fn summaries_drive_both_renderings() {
        let m = Metrics::new();
        m.record(Command::Query, false, Duration::from_micros(100));
        m.record(Command::Ping, true, Duration::from_nanos(500));
        let summaries = m.command_summaries();
        assert_eq!(summaries.len(), 2);
        assert_eq!(summaries[0].command, Command::Ping, "wire order");
        assert_eq!(summaries[1].command, Command::Query);
        let line = m.render_line();
        let table = m.render_table();
        for s in &summaries {
            assert!(
                line.contains(&format!(
                    "{}={}/{}/{}/{}/{}",
                    s.command.name(), s.count, s.errors, s.p50_ns, s.p95_ns, s.p99_ns
                )),
                "{line}"
            );
            assert!(table.contains(s.command.name()), "{table}");
        }
    }

    #[test]
    fn axis_step_accounting() {
        let m = Metrics::new();
        let mut stats = xpath::StepStats::default();
        stats.steps[xpath::Axis::Child.index()] = 3;
        stats.steps[xpath::Axis::Descendant.index()] = 2;
        m.record_axis_steps(&stats);
        m.record_axis_steps(&stats);
        let totals = m.axis_steps();
        assert_eq!(totals[xpath::Axis::Child.index()], 6);
        assert_eq!(totals[xpath::Axis::Descendant.index()], 4);
        assert_eq!(totals[xpath::Axis::Following.index()], 0);
    }

    #[test]
    fn per_command_accounting() {
        let m = Metrics::new();
        m.record(Command::Query, false, Duration::from_micros(3));
        m.record(Command::Query, true, Duration::from_micros(5));
        m.record(Command::Parent, false, Duration::from_nanos(200));
        assert_eq!(m.total_requests(), 3);
        assert_eq!(m.total_errors(), 1);
        assert_eq!(m.count_of(Command::Query), 2);
        assert_eq!(m.count_of(Command::Scan), 0);
        assert_eq!(m.latency_of(Command::Parent).total(), 1);
        let line = m.render_line();
        assert!(line.contains("total=3"), "{line}");
        assert!(line.contains("QUERY=2/1/"), "{line}");
        assert!(line.contains("PARENT=1/0/"), "{line}");
        assert!(!line.contains("SCAN="), "{line}");
        let table = m.render_table();
        assert!(table.contains("QUERY") && table.contains("p99"), "{table}");
    }

    #[test]
    fn robustness_counters_render() {
        let m = Metrics::new();
        m.record_shed();
        m.record_shed();
        m.record_oversized();
        m.record_deadline_read();
        m.record_deadline_write();
        m.record_deadline_request();
        m.record_torn();
        assert_eq!(m.shed(), 2);
        assert_eq!(m.oversized(), 1);
        assert_eq!(m.deadline_read(), 1);
        assert_eq!(m.deadline_write(), 1);
        assert_eq!(m.deadline_request(), 1);
        assert_eq!(m.torn(), 1);
        let line = m.render_line();
        for token in [
            "shed=2",
            "oversized=1",
            "torn=1",
            "deadline_read=1",
            "deadline_write=1",
            "deadline_request=1",
        ] {
            assert!(line.contains(token), "{token} missing in {line}");
        }
        assert!(m.render_table().contains("shed=2"), "{}", m.render_table());
    }

    #[test]
    fn plan_op_accounting() {
        let m = Metrics::new();
        m.record_plan_ops([2, 0, 1, 3]);
        m.record_plan_ops([1, 1, 0, 0]);
        assert_eq!(m.plan_ops(), [3, 1, 1, 3]);
        m.record_planner_time(Duration::from_micros(5));
        assert_eq!(m.planner_time().total(), 1);
    }

    #[test]
    fn value_histogram_buckets_and_sums() {
        let h = ValueHistogram::new();
        assert_eq!(h.total(), 0);
        for v in [0u64, 1, 2, 3, 4, 32, 33, 1 << 20] {
            h.record(v);
        }
        let counts = h.bucket_counts();
        assert_eq!(counts[0], 2, "0 and 1 land in le=1");
        assert_eq!(counts[1], 1, "2 lands in le=2");
        assert_eq!(counts[2], 2, "3 and 4 land in le=4");
        assert_eq!(counts[5], 1, "32 lands in le=32");
        assert_eq!(counts[6], 1, "33 lands in le=64");
        assert_eq!(counts[VALUE_BUCKETS - 1], 1, "huge values land in the tail");
        assert_eq!(h.total(), 8);
        assert_eq!(h.sum(), 75 + (1 << 20));
        assert_eq!(ValueHistogram::bucket_upper(0), Some(1));
        assert_eq!(ValueHistogram::bucket_upper(5), Some(32));
        assert_eq!(ValueHistogram::bucket_upper(VALUE_BUCKETS - 1), None);
    }

    #[test]
    fn wire_layer_counters() {
        let m = Metrics::new();
        m.add_net_read(100);
        m.add_net_read(28);
        m.add_net_written(512);
        m.record_protocol_request(Protocol::Text);
        m.record_protocol_request(Protocol::Binary);
        m.record_protocol_request(Protocol::Binary);
        m.record_pipeline_depth(16);
        m.record_batch_size(64);
        assert_eq!(m.net_bytes_read(), 128);
        assert_eq!(m.net_bytes_written(), 512);
        assert_eq!(m.protocol_requests(), [1, 2]);
        assert_eq!(m.pipeline_depth().total(), 1);
        assert_eq!(m.pipeline_depth().sum(), 16);
        assert_eq!(m.batch_size().sum(), 64);
        m.record(Command::MQuery, false, Duration::from_micros(9));
        assert_eq!(m.count_of(Command::MQuery), 1);
        assert!(m.render_line().contains("MQUERY=1/0/"));
    }

    #[test]
    fn command_names_align_with_discriminants() {
        for (i, &c) in COMMANDS.iter().enumerate() {
            assert_eq!(c as usize, i, "{}", c.name());
        }
    }
}
