//! Lock-free service observability: per-command request and error
//! counters plus fixed-bucket latency histograms.
//!
//! Everything is an `AtomicU64`, so recording on the hot path is a handful
//! of relaxed atomic adds — no locks, no allocation. Percentiles are
//! computed on demand from the buckets (each bucket spans a power of two
//! of nanoseconds), which is exact enough for p50/p95/p99 reporting and
//! costs nothing when nobody asks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Bucket count: bucket `i` holds samples with `ns < 2^(i+1)` (the last
/// bucket is open-ended). 2^40 ns ≈ 18 minutes, far beyond any request.
const BUCKETS: usize = 40;

/// A fixed-bucket latency histogram with power-of-two nanosecond buckets.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram { buckets: std::array::from_fn(|_| AtomicU64::new(0)) }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    fn bucket_of(ns: u64) -> usize {
        // 0 and 1 ns land in bucket 0; doubling thereafter.
        (63 - ns.max(1).leading_zeros() as usize).min(BUCKETS - 1)
    }

    /// Records one sample.
    pub fn record(&self, elapsed: Duration) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.buckets[Self::bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of recorded samples.
    pub fn total(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The upper bound (in ns) of the bucket containing the `q`-quantile
    /// sample (`q` in `[0, 1]`), or 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let total = self.total();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return 1u64 << (i + 1);
            }
        }
        1u64 << BUCKETS
    }
}

/// The protocol commands the service meters, in wire order.
///
/// `Invalid` accounts for lines that fail to parse at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Command {
    /// `PING`
    Ping = 0,
    /// `LOAD <path> [depth]`
    Load,
    /// `UNLOAD <doc>`
    Unload,
    /// `LIST`
    List,
    /// `LABEL <doc> <xpath>`
    Label,
    /// `PARENT <doc> <g> <l> <r>`
    Parent,
    /// `QUERY <doc> <xpath> [engine]`
    Query,
    /// `SCAN <doc> <global>`
    Scan,
    /// `GET <doc> <g> <l> <r>`
    Get,
    /// `STATS <doc>`
    Stats,
    /// `METRICS`
    Metrics,
    /// `SNAPSHOT`
    Snapshot,
    /// `PERSIST`
    Persist,
    /// `SHUTDOWN`
    Shutdown,
    /// Unparseable input.
    Invalid,
}

/// Every command, aligned with the `repr(usize)` discriminants.
pub const COMMANDS: [Command; 15] = [
    Command::Ping,
    Command::Load,
    Command::Unload,
    Command::List,
    Command::Label,
    Command::Parent,
    Command::Query,
    Command::Scan,
    Command::Get,
    Command::Stats,
    Command::Metrics,
    Command::Snapshot,
    Command::Persist,
    Command::Shutdown,
    Command::Invalid,
];

impl Command {
    /// The wire keyword (uppercase).
    pub fn name(self) -> &'static str {
        match self {
            Command::Ping => "PING",
            Command::Load => "LOAD",
            Command::Unload => "UNLOAD",
            Command::List => "LIST",
            Command::Label => "LABEL",
            Command::Parent => "PARENT",
            Command::Query => "QUERY",
            Command::Scan => "SCAN",
            Command::Get => "GET",
            Command::Stats => "STATS",
            Command::Metrics => "METRICS",
            Command::Snapshot => "SNAPSHOT",
            Command::Persist => "PERSIST",
            Command::Shutdown => "SHUTDOWN",
            Command::Invalid => "INVALID",
        }
    }
}

#[derive(Default)]
struct CommandMetrics {
    count: AtomicU64,
    errors: AtomicU64,
    latency: Histogram,
}

/// Per-command counters and histograms for the whole service.
#[derive(Default)]
pub struct Metrics {
    per_command: [CommandMetrics; COMMANDS.len()],
    connections: AtomicU64,
    /// Connections/requests answered `BUSY` (queue full or injected).
    shed: AtomicU64,
    /// Request lines rejected for exceeding the frame-size limit.
    oversized: AtomicU64,
    /// Connections killed because a request line missed the read deadline.
    deadline_read: AtomicU64,
    /// Connections killed because a response write missed its deadline.
    deadline_write: AtomicU64,
    /// Requests whose handling overran the per-request deadline.
    deadline_request: AtomicU64,
    /// Connections that hit EOF mid-line (a torn request from the peer).
    torn: AtomicU64,
}

impl Metrics {
    /// Creates zeroed metrics.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Records one handled request: which command, whether it failed, and
    /// how long handling took.
    pub fn record(&self, command: Command, is_error: bool, elapsed: Duration) {
        let m = &self.per_command[command as usize];
        m.count.fetch_add(1, Ordering::Relaxed);
        if is_error {
            m.errors.fetch_add(1, Ordering::Relaxed);
        }
        m.latency.record(elapsed);
    }

    /// Counts one accepted connection.
    pub fn record_connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one `BUSY` answer (load shedding or an injected fault).
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one oversized request line.
    pub fn record_oversized(&self) {
        self.oversized.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one read-deadline expiry.
    pub fn record_deadline_read(&self) {
        self.deadline_read.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one write-deadline expiry.
    pub fn record_deadline_write(&self) {
        self.deadline_write.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one per-request deadline overrun.
    pub fn record_deadline_request(&self) {
        self.deadline_request.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one torn request (EOF mid-line).
    pub fn record_torn(&self) {
        self.torn.fetch_add(1, Ordering::Relaxed);
    }

    /// `BUSY` answers so far.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Oversized request lines so far.
    pub fn oversized(&self) -> u64 {
        self.oversized.load(Ordering::Relaxed)
    }

    /// Read-deadline expiries so far.
    pub fn deadline_read(&self) -> u64 {
        self.deadline_read.load(Ordering::Relaxed)
    }

    /// Write-deadline expiries so far.
    pub fn deadline_write(&self) -> u64 {
        self.deadline_write.load(Ordering::Relaxed)
    }

    /// Per-request deadline overruns so far.
    pub fn deadline_request(&self) -> u64 {
        self.deadline_request.load(Ordering::Relaxed)
    }

    /// Torn requests so far.
    pub fn torn(&self) -> u64 {
        self.torn.load(Ordering::Relaxed)
    }

    /// Total requests across all commands.
    pub fn total_requests(&self) -> u64 {
        self.per_command.iter().map(|m| m.count.load(Ordering::Relaxed)).sum()
    }

    /// Total errors across all commands.
    pub fn total_errors(&self) -> u64 {
        self.per_command.iter().map(|m| m.errors.load(Ordering::Relaxed)).sum()
    }

    /// Requests recorded for one command.
    pub fn count_of(&self, command: Command) -> u64 {
        self.per_command[command as usize].count.load(Ordering::Relaxed)
    }

    /// The latency histogram of one command.
    pub fn latency_of(&self, command: Command) -> &Histogram {
        &self.per_command[command as usize].latency
    }

    /// The single-line wire rendering served by `METRICS`:
    ///
    /// ```text
    /// OK connections=3 total=17 errors=1 PING=1/0/512/512/512 LOAD=... ...
    /// ```
    ///
    /// Each command segment is `NAME=count/errors/p50ns/p95ns/p99ns`;
    /// commands with no traffic are omitted.
    pub fn render_line(&self) -> String {
        let mut out = format!(
            "connections={} total={} errors={} shed={} oversized={} torn={} \
             deadline_read={} deadline_write={} deadline_request={}",
            self.connections.load(Ordering::Relaxed),
            self.total_requests(),
            self.total_errors(),
            self.shed(),
            self.oversized(),
            self.torn(),
            self.deadline_read(),
            self.deadline_write(),
            self.deadline_request(),
        );
        for &command in &COMMANDS {
            let m = &self.per_command[command as usize];
            let count = m.count.load(Ordering::Relaxed);
            if count == 0 {
                continue;
            }
            out.push_str(&format!(
                " {}={}/{}/{}/{}/{}",
                command.name(),
                count,
                m.errors.load(Ordering::Relaxed),
                m.latency.quantile_ns(0.50),
                m.latency.quantile_ns(0.95),
                m.latency.quantile_ns(0.99),
            ));
        }
        out
    }

    /// A human-readable multi-line table (dumped on server shutdown).
    pub fn render_table(&self) -> String {
        let mut out = format!(
            "{:<10} {:>9} {:>7} {:>12} {:>12} {:>12}\n",
            "command", "count", "errors", "p50", "p95", "p99"
        );
        for &command in &COMMANDS {
            let m = &self.per_command[command as usize];
            let count = m.count.load(Ordering::Relaxed);
            if count == 0 {
                continue;
            }
            out.push_str(&format!(
                "{:<10} {:>9} {:>7} {:>12} {:>12} {:>12}\n",
                command.name(),
                count,
                m.errors.load(Ordering::Relaxed),
                fmt_ns(m.latency.quantile_ns(0.50)),
                fmt_ns(m.latency.quantile_ns(0.95)),
                fmt_ns(m.latency.quantile_ns(0.99)),
            ));
        }
        out.push_str(&format!(
            "{:<10} {:>9} {:>7}   ({} connections)\n",
            "total",
            self.total_requests(),
            self.total_errors(),
            self.connections.load(Ordering::Relaxed),
        ));
        out.push_str(&format!(
            "robustness shed={} oversized={} torn={} deadline_read={} \
             deadline_write={} deadline_request={}\n",
            self.shed(),
            self.oversized(),
            self.torn(),
            self.deadline_read(),
            self.deadline_write(),
            self.deadline_request(),
        ));
        out
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("<{ns} ns")
    } else if ns < 1_000_000 {
        format!("<{:.1} µs", ns as f64 / 1_000.0)
    } else {
        format!("<{:.1} ms", ns as f64 / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_double() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 1);
        assert_eq!(Histogram::bucket_of(4), 2);
        assert_eq!(Histogram::bucket_of(1024), 10);
        assert_eq!(Histogram::bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_walk_the_buckets() {
        let h = Histogram::new();
        assert_eq!(h.quantile_ns(0.5), 0, "empty histogram");
        // 90 fast samples (~1 µs), 10 slow (~1 ms).
        for _ in 0..90 {
            h.record(Duration::from_micros(1));
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(1));
        }
        assert_eq!(h.total(), 100);
        assert!(h.quantile_ns(0.50) <= 2_048, "p50 in the µs bucket");
        assert!(h.quantile_ns(0.99) >= 1_000_000, "p99 in the ms bucket");
        assert!(h.quantile_ns(0.0) <= 2_048);
        assert!(h.quantile_ns(1.0) >= 1_000_000);
    }

    #[test]
    fn per_command_accounting() {
        let m = Metrics::new();
        m.record(Command::Query, false, Duration::from_micros(3));
        m.record(Command::Query, true, Duration::from_micros(5));
        m.record(Command::Parent, false, Duration::from_nanos(200));
        assert_eq!(m.total_requests(), 3);
        assert_eq!(m.total_errors(), 1);
        assert_eq!(m.count_of(Command::Query), 2);
        assert_eq!(m.count_of(Command::Scan), 0);
        assert_eq!(m.latency_of(Command::Parent).total(), 1);
        let line = m.render_line();
        assert!(line.contains("total=3"), "{line}");
        assert!(line.contains("QUERY=2/1/"), "{line}");
        assert!(line.contains("PARENT=1/0/"), "{line}");
        assert!(!line.contains("SCAN="), "{line}");
        let table = m.render_table();
        assert!(table.contains("QUERY") && table.contains("p99"), "{table}");
    }

    #[test]
    fn robustness_counters_render() {
        let m = Metrics::new();
        m.record_shed();
        m.record_shed();
        m.record_oversized();
        m.record_deadline_read();
        m.record_deadline_write();
        m.record_deadline_request();
        m.record_torn();
        assert_eq!(m.shed(), 2);
        assert_eq!(m.oversized(), 1);
        assert_eq!(m.deadline_read(), 1);
        assert_eq!(m.deadline_write(), 1);
        assert_eq!(m.deadline_request(), 1);
        assert_eq!(m.torn(), 1);
        let line = m.render_line();
        for token in [
            "shed=2",
            "oversized=1",
            "torn=1",
            "deadline_read=1",
            "deadline_write=1",
            "deadline_request=1",
        ] {
            assert!(line.contains(token), "{token} missing in {line}");
        }
        assert!(m.render_table().contains("shed=2"), "{}", m.render_table());
    }

    #[test]
    fn command_names_align_with_discriminants() {
        for (i, &c) in COMMANDS.iter().enumerate() {
            assert_eq!(c as usize, i, "{}", c.name());
        }
    }
}
