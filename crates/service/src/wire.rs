//! Length-prefixed binary framing: the pipelined wire protocol.
//!
//! The text protocol spends one syscall pair and one response write per
//! request, and a worker thread parks on every idle connection. The
//! binary protocol fixes the serving economics without touching request
//! semantics: every frame carries a client-chosen **request id**, many
//! frames can be in flight per connection (pipelining), and responses may
//! come back **out of order** — the id is what matches them up. Batch
//! verbs (`MQUERY`/`MLABEL`) go further and amortize one catalog snapshot
//! pin and one reply write over a whole batch of XPath expressions.
//!
//! ## Frame layout
//!
//! ```text
//! request   0xB1 | len:u32 LE | id:u64 LE | verb:u8 | payload
//! response  0xB2 | len:u32 LE | id:u64 LE | status:u8 | payload
//! ```
//!
//! `len` counts the *body* (id + verb/status + payload), so a frame is
//! `5 + len` bytes on the wire. The magics `0xB1`/`0xB2` are invalid as a
//! UTF-8 lead byte, which is what lets the server sniff the protocol from
//! the first byte of a connection: a text request line can never start
//! with them.
//!
//! ## Verbs
//!
//! | code | verb     | payload                                              |
//! |------|----------|------------------------------------------------------|
//! | 0x01 | `PING`   | empty                                                |
//! | 0x02 | `QUERY`  | `doc:u64 \| engine:u8 \| xpath:utf8…`                |
//! | 0x03 | `LABEL`  | `doc:u64 \| xpath:utf8…`                             |
//! | 0x04 | `PARENT` | `doc:u64 \| g:u64 \| l:u64 \| root:u8`               |
//! | 0x05 | `GET`    | `doc:u64 \| g:u64 \| l:u64 \| root:u8`               |
//! | 0x06 | `MQUERY` | `doc:u64 \| n:u32 \| n × (len:u32 \| xpath:utf8)`    |
//! | 0x07 | `MLABEL` | `doc:u64 \| n:u32 \| n × (len:u32 \| xpath:utf8)`    |
//! | 0x08 | `TEXT`   | one text-protocol request line (escape hatch for     |
//! |      |          | every other verb: `LOAD`, `METRICS`, `SHUTDOWN`, …)  |
//! | 0x09 | `REPL HELLO`    | `follower:utf8…`                              |
//! | 0x0A | `REPL SNAPSHOT` | `generation:u64`                              |
//! | 0x0B | `REPL TAIL`     | `generation:u64 \| offset:u64 \| max:u32`     |
//! | 0x0C | `REPL ACK`      | `generation:u64 \| seq:u64 \| bye:u8 \|`      |
//! |      |                 | `follower:utf8…`                              |
//! | 0x0D | `LOADSTREAM`    | `name_len:u32 \| name:utf8 \| events:utf8…`   |
//!
//! Engine codes: 0 = planned (default), 1 = tree, 2 = ruid, 3 = indexed,
//! 4 = interval, 5 = ancestry.
//!
//! The `REPL` verbs are the replication channel: a follower greets the
//! leader (`HELLO`, answered with a [`repl::HelloInfo`] blob), pulls the
//! newest snapshot image (`SNAPSHOT`, answered with the raw file bytes),
//! polls for committed WAL bytes (`TAIL`, answered with a
//! [`repl::TailChunk`] blob), and reports its applied position (`ACK`,
//! with `bye = 1` meaning a clean detach). They ride the same mux as
//! every other verb — replication is just another pipelined client.
//!
//! ## Responses
//!
//! Status 0 (`LINE`) carries exactly the bytes the text protocol would
//! have answered for the same request (without the `\n` terminator) — the
//! two front ends are byte-identical by construction. Status 1 (`BATCH`)
//! answers `MQUERY`/`MLABEL` with `n:u32 | n × (len:u32 | line)`, one
//! text-identical response line per sub-query, in sub-query order.
//! Status 2 (`BLOB`) carries raw bytes (snapshot images, tail chunks,
//! hello payloads) — never UTF-8-validated, never line-framed.
//!
//! ## Robustness
//!
//! Decoding is **total**: any byte slice decodes to exactly one of
//! [`Decoded`]'s arms without panicking. Truncations of a valid frame
//! always decode `Incomplete` (the caller waits for more bytes); a frame
//! whose declared body length exceeds the configured cap is `Oversized`
//! *before* any allocation happens; a structurally complete frame with a
//! bad interior (unknown verb, bad UTF-8, short counts) is `Malformed`
//! and names how many bytes to skip, so one bad frame costs one `ERR`
//! response, not the connection.

use crate::proto::Engine;
use ruid_core::Ruid2;

/// First byte of every binary request frame (never a UTF-8 lead byte).
pub const REQ_MAGIC: u8 = 0xB1;
/// First byte of every binary response frame.
pub const RESP_MAGIC: u8 = 0xB2;
/// Bytes before the body: magic + the `u32` body length.
pub const HEADER_BYTES: usize = 5;
/// The smallest legal body: an id and a verb/status byte.
const MIN_BODY: usize = 9;
/// Upper bound on `MQUERY`/`MLABEL` sub-queries per frame.
pub const MAX_BATCH: usize = 4096;

/// One decoded binary request (the typed mirror of the verb table above).
#[derive(Debug, Clone, PartialEq)]
pub enum WireRequest {
    /// `PING`.
    Ping,
    /// `QUERY <doc> <xpath> [engine]`.
    Query {
        /// Target document id.
        doc: u64,
        /// Which axis engine evaluates it.
        engine: Engine,
        /// XPath expression.
        xpath: String,
    },
    /// `LABEL <doc> <xpath>`.
    Label {
        /// Target document id.
        doc: u64,
        /// XPath expression.
        xpath: String,
    },
    /// `PARENT <doc> <g> <l> <r>`.
    Parent {
        /// Target document id.
        doc: u64,
        /// The identifier to take the parent of.
        label: Ruid2,
    },
    /// `GET <doc> <g> <l> <r>`.
    Get {
        /// Target document id.
        doc: u64,
        /// The identifier to fetch.
        label: Ruid2,
    },
    /// `MQUERY <doc>` over a batch of XPath expressions: one catalog
    /// snapshot pin, one planned/cached evaluation per entry, one reply.
    MQuery {
        /// Target document id.
        doc: u64,
        /// The batched XPath expressions.
        xpaths: Vec<String>,
    },
    /// `MLABEL <doc>`: identical to `MQUERY` (labels *are* the planned
    /// rendering), metered under its own command bucket.
    MLabel {
        /// Target document id.
        doc: u64,
        /// The batched XPath expressions.
        xpaths: Vec<String>,
    },
    /// A raw text-protocol request line carried over a binary frame —
    /// the compatibility escape hatch for every other verb.
    Text {
        /// The request line, exactly as the text protocol would read it.
        line: String,
    },
    /// `REPL HELLO`: a follower introduces itself; the leader answers a
    /// `Blob` holding an encoded `repl::HelloInfo`.
    ReplHello {
        /// The follower's self-chosen name (shows up in leader metrics).
        follower: String,
    },
    /// `REPL SNAPSHOT`: fetch the raw bytes of snapshot `generation`.
    ReplSnapshot {
        /// Which snapshot generation to ship.
        generation: u64,
    },
    /// `REPL TAIL`: fetch committed WAL bytes of segment `generation`
    /// starting at `offset`; the leader answers a `Blob` holding an
    /// encoded `repl::TailChunk`.
    ReplTail {
        /// Which WAL segment to read.
        generation: u64,
        /// Byte offset within the segment to start from.
        offset: u64,
        /// Upper bound on shipped data bytes in one answer.
        max_bytes: u32,
    },
    /// `LOADSTREAM <name> <event>...`: build a document from
    /// interval-encoded flat events without materializing XML text.
    LoadStream {
        /// Display name the document is catalogued under.
        name: String,
        /// Whitespace-separated `start:end:content` event tokens.
        events: String,
    },
    /// `REPL ACK`: the follower reports its applied position so the
    /// leader can compute per-follower lag; `bye` marks a clean detach
    /// (the follower is shutting down, not crashing).
    ReplAck {
        /// Segment generation the follower has applied through.
        generation: u64,
        /// Next sequence number the follower expects in that segment.
        seq: u64,
        /// True when this is a goodbye: forget the follower.
        bye: bool,
        /// The follower's name, matching its `REPL HELLO`.
        follower: String,
    },
}

/// One decoded binary response body.
#[derive(Debug, Clone, PartialEq)]
pub enum WireResponse {
    /// Status 0: the text-protocol response line (no terminator).
    Line(String),
    /// Status 1: one text-identical response line per sub-query.
    Batch(Vec<String>),
    /// Status 2: raw bytes (replication payloads — snapshot images,
    /// encoded tail chunks, hello infos).
    Blob(Vec<u8>),
}

/// A request frame: the id the client chose plus the request.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestFrame {
    /// Client-chosen request id, echoed verbatim in the response.
    pub id: u64,
    /// The decoded request.
    pub request: WireRequest,
}

/// A response frame: the echoed id plus the response body.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseFrame {
    /// The id of the request this answers (0 for connection-level errors
    /// the server raises on its own, e.g. an oversized frame).
    pub id: u64,
    /// The decoded response.
    pub response: WireResponse,
}

/// The total outcome of one decode attempt over a byte buffer.
#[derive(Debug, PartialEq)]
pub enum Decoded<T> {
    /// A complete frame; `consumed` bytes of the buffer belong to it.
    Frame {
        /// The decoded frame.
        frame: T,
        /// Bytes of the input the frame occupied.
        consumed: usize,
    },
    /// Not enough bytes yet — read more and retry with a longer slice.
    Incomplete,
    /// The header declares a body larger than the configured cap. The
    /// connection cannot resynchronize (the length itself is untrusted):
    /// answer an error and close.
    Oversized {
        /// The declared body length.
        declared: usize,
    },
    /// A structurally complete frame with a bad interior. Skipping
    /// `consumed` bytes resynchronizes on the next frame.
    Malformed {
        /// The frame's request id when it could be read, else 0.
        id: u64,
        /// What was wrong.
        reason: String,
        /// Bytes to skip to reach the next frame.
        consumed: usize,
    },
    /// The first byte is not the expected magic — this is not a binary
    /// frame stream. Close.
    Corrupt {
        /// What was wrong.
        reason: &'static str,
    },
}

fn engine_code(engine: Engine) -> u8 {
    match engine {
        Engine::Planned => 0,
        Engine::Tree => 1,
        Engine::Ruid => 2,
        Engine::Indexed => 3,
        Engine::Interval => 4,
        Engine::Ancestry => 5,
    }
}

fn engine_from(code: u8) -> Option<Engine> {
    match code {
        0 => Some(Engine::Planned),
        1 => Some(Engine::Tree),
        2 => Some(Engine::Ruid),
        3 => Some(Engine::Indexed),
        4 => Some(Engine::Interval),
        5 => Some(Engine::Ancestry),
        _ => None,
    }
}

fn put_str_list(out: &mut Vec<u8>, items: &[String]) {
    out.extend_from_slice(&(items.len() as u32).to_le_bytes());
    for item in items {
        out.extend_from_slice(&(item.len() as u32).to_le_bytes());
        out.extend_from_slice(item.as_bytes());
    }
}

fn put_label(out: &mut Vec<u8>, label: &Ruid2) {
    out.extend_from_slice(&label.global.to_le_bytes());
    out.extend_from_slice(&label.local.to_le_bytes());
    out.push(u8::from(label.is_root));
}

/// Appends one encoded request frame to `out` (which may already hold
/// other frames — that is how a pipelined client builds one write).
pub fn encode_request(id: u64, request: &WireRequest, out: &mut Vec<u8>) {
    let start = out.len();
    out.push(REQ_MAGIC);
    out.extend_from_slice(&[0u8; 4]); // length back-patched below
    out.extend_from_slice(&id.to_le_bytes());
    match request {
        WireRequest::Ping => out.push(0x01),
        WireRequest::Query { doc, engine, xpath } => {
            out.push(0x02);
            out.extend_from_slice(&doc.to_le_bytes());
            out.push(engine_code(*engine));
            out.extend_from_slice(xpath.as_bytes());
        }
        WireRequest::Label { doc, xpath } => {
            out.push(0x03);
            out.extend_from_slice(&doc.to_le_bytes());
            out.extend_from_slice(xpath.as_bytes());
        }
        WireRequest::Parent { doc, label } => {
            out.push(0x04);
            out.extend_from_slice(&doc.to_le_bytes());
            put_label(out, label);
        }
        WireRequest::Get { doc, label } => {
            out.push(0x05);
            out.extend_from_slice(&doc.to_le_bytes());
            put_label(out, label);
        }
        WireRequest::MQuery { doc, xpaths } => {
            out.push(0x06);
            out.extend_from_slice(&doc.to_le_bytes());
            put_str_list(out, xpaths);
        }
        WireRequest::MLabel { doc, xpaths } => {
            out.push(0x07);
            out.extend_from_slice(&doc.to_le_bytes());
            put_str_list(out, xpaths);
        }
        WireRequest::Text { line } => {
            out.push(0x08);
            out.extend_from_slice(line.as_bytes());
        }
        WireRequest::ReplHello { follower } => {
            out.push(0x09);
            out.extend_from_slice(follower.as_bytes());
        }
        WireRequest::ReplSnapshot { generation } => {
            out.push(0x0A);
            out.extend_from_slice(&generation.to_le_bytes());
        }
        WireRequest::ReplTail { generation, offset, max_bytes } => {
            out.push(0x0B);
            out.extend_from_slice(&generation.to_le_bytes());
            out.extend_from_slice(&offset.to_le_bytes());
            out.extend_from_slice(&max_bytes.to_le_bytes());
        }
        WireRequest::LoadStream { name, events } => {
            out.push(0x0D);
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(events.as_bytes());
        }
        WireRequest::ReplAck { generation, seq, bye, follower } => {
            out.push(0x0C);
            out.extend_from_slice(&generation.to_le_bytes());
            out.extend_from_slice(&seq.to_le_bytes());
            out.push(u8::from(*bye));
            out.extend_from_slice(follower.as_bytes());
        }
    }
    patch_len(out, start);
}

/// Appends one encoded response frame to `out`.
pub fn encode_response(id: u64, response: &WireResponse, out: &mut Vec<u8>) {
    let start = out.len();
    out.push(RESP_MAGIC);
    out.extend_from_slice(&[0u8; 4]);
    out.extend_from_slice(&id.to_le_bytes());
    match response {
        WireResponse::Line(line) => {
            out.push(0);
            out.extend_from_slice(line.as_bytes());
        }
        WireResponse::Batch(lines) => {
            out.push(1);
            put_str_list(out, lines);
        }
        WireResponse::Blob(bytes) => {
            out.push(2);
            out.extend_from_slice(bytes);
        }
    }
    patch_len(out, start);
}

fn patch_len(out: &mut [u8], start: usize) {
    let len = (out.len() - start - HEADER_BYTES) as u32;
    out[start + 1..start + HEADER_BYTES].copy_from_slice(&len.to_le_bytes());
}

/// A bounds-checked cursor over a frame body; every `take_*` fails with a
/// message instead of slicing out of range, which is what keeps decoding
/// total.
struct Cursor<'a> {
    rest: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        if self.rest.len() < n {
            return Err(format!("truncated {what} ({} of {n} bytes)", self.rest.len()));
        }
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        Ok(head)
    }

    fn take_u64(&mut self, what: &str) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().expect("8 bytes")))
    }

    fn take_u32(&mut self, what: &str) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().expect("4 bytes")))
    }

    fn take_u8(&mut self, what: &str) -> Result<u8, String> {
        Ok(self.take(1, what)?[0])
    }

    fn take_label(&mut self) -> Result<Ruid2, String> {
        let global = self.take_u64("global index")?;
        let local = self.take_u64("local index")?;
        let is_root = match self.take_u8("root flag")? {
            0 => false,
            1 => true,
            other => return Err(format!("bad root flag {other} (want 0|1)")),
        };
        Ok(Ruid2::new(global, local, is_root))
    }

    fn take_str_rest(&mut self, what: &str) -> Result<String, String> {
        let bytes = std::mem::take(&mut self.rest);
        String::from_utf8(bytes.to_vec()).map_err(|_| format!("{what} is not valid utf-8"))
    }

    fn take_bytes_rest(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.rest).to_vec()
    }

    fn take_str_list(&mut self) -> Result<Vec<String>, String> {
        let count = self.take_u32("batch count")? as usize;
        if count > MAX_BATCH {
            return Err(format!("batch of {count} exceeds the {MAX_BATCH}-entry limit"));
        }
        let mut items = Vec::with_capacity(count.min(64));
        for i in 0..count {
            let len = self.take_u32("batch entry length")? as usize;
            let bytes = self.take(len, "batch entry")?;
            items.push(
                std::str::from_utf8(bytes)
                    .map_err(|_| format!("batch entry {i} is not valid utf-8"))?
                    .to_owned(),
            );
        }
        Ok(items)
    }

    fn finish(&self, what: &str) -> Result<(), String> {
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(format!("{} trailing bytes after {what}", self.rest.len()))
        }
    }
}

/// Splits one frame off the front of `buf`: checks the magic, reads the
/// declared body length against `cap + MIN_BODY` (so `cap` bounds the
/// payload, exactly like `max_line_bytes` bounds a text line), and hands
/// the body to `parse`.
fn decode_frame<T>(
    buf: &[u8],
    magic: u8,
    bad_magic: &'static str,
    cap: usize,
    parse: impl FnOnce(u64, u8, Cursor<'_>) -> Result<T, String>,
) -> Decoded<T> {
    let Some(&first) = buf.first() else { return Decoded::Incomplete };
    if first != magic {
        return Decoded::Corrupt { reason: bad_magic };
    }
    if buf.len() < HEADER_BYTES {
        return Decoded::Incomplete;
    }
    let len = u32::from_le_bytes(buf[1..HEADER_BYTES].try_into().expect("4 bytes")) as usize;
    if len > cap.saturating_add(MIN_BODY) {
        return Decoded::Oversized { declared: len };
    }
    let consumed = HEADER_BYTES + len;
    if buf.len() < consumed {
        return Decoded::Incomplete;
    }
    let body = &buf[HEADER_BYTES..consumed];
    if body.len() < MIN_BODY {
        return Decoded::Malformed {
            id: 0,
            reason: format!("frame body too short ({} bytes)", body.len()),
            consumed,
        };
    }
    let id = u64::from_le_bytes(body[..8].try_into().expect("8 bytes"));
    let tag = body[8];
    match parse(id, tag, Cursor { rest: &body[MIN_BODY..] }) {
        Ok(frame) => Decoded::Frame { frame, consumed },
        Err(reason) => Decoded::Malformed { id, reason, consumed },
    }
}

/// Decodes one request frame off the front of `buf`. `cap` is the payload
/// cap (the server passes its `max_line_bytes`).
pub fn decode_request(buf: &[u8], cap: usize) -> Decoded<RequestFrame> {
    decode_frame(buf, REQ_MAGIC, "bad request magic", cap, |id, verb, mut c| {
        let request = match verb {
            0x01 => {
                c.finish("PING")?;
                WireRequest::Ping
            }
            0x02 => {
                let doc = c.take_u64("document id")?;
                let engine = engine_from(c.take_u8("engine code")?)
                    .ok_or("bad engine code (want 0..=5)")?;
                WireRequest::Query { doc, engine, xpath: c.take_str_rest("xpath")? }
            }
            0x03 => {
                let doc = c.take_u64("document id")?;
                WireRequest::Label { doc, xpath: c.take_str_rest("xpath")? }
            }
            0x04 => {
                let doc = c.take_u64("document id")?;
                let label = c.take_label()?;
                c.finish("PARENT")?;
                WireRequest::Parent { doc, label }
            }
            0x05 => {
                let doc = c.take_u64("document id")?;
                let label = c.take_label()?;
                c.finish("GET")?;
                WireRequest::Get { doc, label }
            }
            0x06 => {
                let doc = c.take_u64("document id")?;
                let xpaths = c.take_str_list()?;
                c.finish("MQUERY")?;
                WireRequest::MQuery { doc, xpaths }
            }
            0x07 => {
                let doc = c.take_u64("document id")?;
                let xpaths = c.take_str_list()?;
                c.finish("MLABEL")?;
                WireRequest::MLabel { doc, xpaths }
            }
            0x08 => WireRequest::Text { line: c.take_str_rest("request line")? },
            0x09 => WireRequest::ReplHello { follower: c.take_str_rest("follower name")? },
            0x0A => {
                let generation = c.take_u64("snapshot generation")?;
                c.finish("REPL SNAPSHOT")?;
                WireRequest::ReplSnapshot { generation }
            }
            0x0B => {
                let generation = c.take_u64("segment generation")?;
                let offset = c.take_u64("segment offset")?;
                let max_bytes = c.take_u32("tail byte cap")?;
                c.finish("REPL TAIL")?;
                WireRequest::ReplTail { generation, offset, max_bytes }
            }
            0x0C => {
                let generation = c.take_u64("ack generation")?;
                let seq = c.take_u64("ack sequence")?;
                let bye = match c.take_u8("bye flag")? {
                    0 => false,
                    1 => true,
                    other => return Err(format!("bad bye flag {other} (want 0|1)")),
                };
                let follower = c.take_str_rest("follower name")?;
                WireRequest::ReplAck { generation, seq, bye, follower }
            }
            0x0D => {
                let name_len = c.take_u32("name length")? as usize;
                let name = std::str::from_utf8(c.take(name_len, "document name")?)
                    .map_err(|_| "document name is not valid utf-8")?
                    .to_owned();
                WireRequest::LoadStream { name, events: c.take_str_rest("event stream")? }
            }
            other => return Err(format!("unknown verb 0x{other:02x}")),
        };
        Ok(RequestFrame { id, request })
    })
}

/// Decodes one response frame off the front of `buf`. Responses have no
/// payload cap (a `QUERY` answer can be arbitrarily long); the length
/// field still bounds the read.
pub fn decode_response(buf: &[u8]) -> Decoded<ResponseFrame> {
    decode_frame(buf, RESP_MAGIC, "bad response magic", u32::MAX as usize, |id, status, mut c| {
        let response = match status {
            0 => WireResponse::Line(c.take_str_rest("response line")?),
            1 => {
                let lines = c.take_str_list()?;
                c.finish("batch response")?;
                WireResponse::Batch(lines)
            }
            2 => WireResponse::Blob(c.take_bytes_rest()),
            other => return Err(format!("unknown status {other}")),
        };
        Ok(ResponseFrame { id, response })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(request: WireRequest) {
        let mut buf = Vec::new();
        encode_request(7, &request, &mut buf);
        match decode_request(&buf, 64 * 1024) {
            Decoded::Frame { frame, consumed } => {
                assert_eq!(consumed, buf.len());
                assert_eq!(frame.id, 7);
                assert_eq!(frame.request, request);
            }
            other => panic!("{request:?} decoded to {other:?}"),
        }
    }

    #[test]
    fn every_request_roundtrips() {
        roundtrip(WireRequest::Ping);
        roundtrip(WireRequest::Query {
            doc: 3,
            engine: Engine::Indexed,
            xpath: "//b[c]/c".into(),
        });
        roundtrip(WireRequest::Label { doc: 1, xpath: "//a".into() });
        roundtrip(WireRequest::Parent { doc: 2, label: Ruid2::new(4, 9, false) });
        roundtrip(WireRequest::Get { doc: 2, label: Ruid2::new(1, 1, true) });
        roundtrip(WireRequest::MQuery {
            doc: 5,
            xpaths: vec!["//a".into(), "/a/b[c]".into(), String::new()],
        });
        roundtrip(WireRequest::MLabel { doc: 5, xpaths: vec![] });
        roundtrip(WireRequest::Text { line: "METRICS prom".into() });
        roundtrip(WireRequest::ReplHello { follower: "replica-1".into() });
        roundtrip(WireRequest::ReplHello { follower: String::new() });
        roundtrip(WireRequest::ReplSnapshot { generation: 17 });
        roundtrip(WireRequest::ReplTail { generation: 4, offset: 8192, max_bytes: 1 << 20 });
        roundtrip(WireRequest::ReplAck {
            generation: 4,
            seq: 99,
            bye: true,
            follower: "replica-1".into(),
        });
        roundtrip(WireRequest::Query { doc: 3, engine: Engine::Interval, xpath: "//a".into() });
        roundtrip(WireRequest::Query { doc: 3, engine: Engine::Ancestry, xpath: "//a".into() });
        roundtrip(WireRequest::LoadStream {
            name: "feed".into(),
            events: "1:6:a 2:5:b 3:4:=hi".into(),
        });
        roundtrip(WireRequest::LoadStream { name: String::new(), events: String::new() });
    }

    #[test]
    fn loadstream_name_length_is_bounds_checked() {
        let mut buf = Vec::new();
        encode_request(
            9,
            &WireRequest::LoadStream { name: "feed".into(), events: "1:2:a".into() },
            &mut buf,
        );
        // Forge a name length pointing past the payload.
        let len_at = HEADER_BYTES + MIN_BODY;
        buf[len_at..len_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode_request(&buf, 1024), Decoded::Malformed { id: 9, .. }));
    }

    #[test]
    fn responses_roundtrip() {
        for response in [
            WireResponse::Line("OK 2 (1,1,true) (2,3,false)".into()),
            WireResponse::Line(String::new()),
            WireResponse::Batch(vec!["OK 0".into(), "ERR no document 9".into()]),
            WireResponse::Batch(vec![]),
            WireResponse::Blob(vec![0xFF, 0x00, 0xB1, 0xB2, 7]),
            WireResponse::Blob(Vec::new()),
        ] {
            let mut buf = Vec::new();
            encode_response(99, &response, &mut buf);
            match decode_response(&buf) {
                Decoded::Frame { frame, consumed } => {
                    assert_eq!(consumed, buf.len());
                    assert_eq!(frame.id, 99);
                    assert_eq!(frame.response, response);
                }
                other => panic!("{response:?} decoded to {other:?}"),
            }
        }
    }

    #[test]
    fn every_truncation_is_incomplete() {
        let mut buf = Vec::new();
        encode_request(
            1,
            &WireRequest::MQuery { doc: 1, xpaths: vec!["//a".into(), "//b/c".into()] },
            &mut buf,
        );
        for n in 0..buf.len() {
            assert_eq!(
                decode_request(&buf[..n], 64 * 1024),
                Decoded::Incomplete,
                "prefix of {n} bytes"
            );
        }
    }

    #[test]
    fn wrong_magic_is_corrupt() {
        assert!(matches!(decode_request(b"PING\n", 1024), Decoded::Corrupt { .. }));
        assert!(matches!(decode_response(b"OK pong\n"), Decoded::Corrupt { .. }));
        assert_eq!(decode_request(&[], 1024), Decoded::Incomplete);
    }

    #[test]
    fn oversized_header_is_rejected_before_the_body_arrives() {
        let mut buf = vec![REQ_MAGIC];
        buf.extend_from_slice(&(1_000_000u32).to_le_bytes());
        assert_eq!(decode_request(&buf, 1024), Decoded::Oversized { declared: 1_000_000 });
        // The cap bounds the payload: a body of exactly cap + MIN_BODY is
        // still allowed (mirrors a text line of exactly max_line_bytes).
        let mut ok = Vec::new();
        encode_request(1, &WireRequest::Text { line: "x".repeat(1024) }, &mut ok);
        assert!(matches!(decode_request(&ok, 1024), Decoded::Frame { .. }));
    }

    #[test]
    fn malformed_frames_resync_at_the_next_frame() {
        // Unknown verb.
        let mut buf = vec![REQ_MAGIC];
        buf.extend_from_slice(&(MIN_BODY as u32).to_le_bytes());
        buf.extend_from_slice(&42u64.to_le_bytes());
        buf.push(0xEE);
        let tail = buf.len();
        encode_request(43, &WireRequest::Ping, &mut buf);
        match decode_request(&buf, 1024) {
            Decoded::Malformed { id, consumed, .. } => {
                assert_eq!(id, 42);
                assert_eq!(consumed, tail);
                assert!(matches!(decode_request(&buf[consumed..], 1024), Decoded::Frame { .. }));
            }
            other => panic!("{other:?}"),
        }
        // Body shorter than id + verb.
        let mut short = vec![REQ_MAGIC];
        short.extend_from_slice(&3u32.to_le_bytes());
        short.extend_from_slice(&[1, 2, 3]);
        assert!(matches!(
            decode_request(&short, 1024),
            Decoded::Malformed { id: 0, .. }
        ));
        // Batch count pointing past the payload.
        let mut bad = vec![REQ_MAGIC];
        let body_len = 8 + 1 + 8 + 4; // id + verb + doc + count
        bad.extend_from_slice(&(body_len as u32).to_le_bytes());
        bad.extend_from_slice(&1u64.to_le_bytes());
        bad.push(0x06);
        bad.extend_from_slice(&1u64.to_le_bytes());
        bad.extend_from_slice(&9u32.to_le_bytes()); // 9 entries, no bytes
        assert!(matches!(decode_request(&bad, 1024), Decoded::Malformed { id: 1, .. }));
        // Bad engine code.
        let mut bad_engine = Vec::new();
        encode_request(
            5,
            &WireRequest::Query { doc: 1, engine: Engine::Planned, xpath: "//a".into() },
            &mut bad_engine,
        );
        bad_engine[HEADER_BYTES + MIN_BODY + 8] = 7; // engine byte
        assert!(matches!(decode_request(&bad_engine, 1024), Decoded::Malformed { id: 5, .. }));
        // Trailing bytes after a fixed-size payload.
        let mut padded = Vec::new();
        encode_request(6, &WireRequest::Ping, &mut padded);
        padded.push(0);
        patch_len(&mut padded, 0);
        assert!(matches!(decode_request(&padded, 1024), Decoded::Malformed { id: 6, .. }));
    }

    #[test]
    fn frames_concatenate_and_split() {
        let mut buf = Vec::new();
        let reqs = [
            WireRequest::Ping,
            WireRequest::Query { doc: 1, engine: Engine::Planned, xpath: "//a".into() },
            WireRequest::Text { line: "LIST".into() },
        ];
        for (i, r) in reqs.iter().enumerate() {
            encode_request(i as u64, r, &mut buf);
        }
        let mut off = 0;
        for (i, r) in reqs.iter().enumerate() {
            match decode_request(&buf[off..], 1024) {
                Decoded::Frame { frame, consumed } => {
                    assert_eq!(frame.id, i as u64);
                    assert_eq!(&frame.request, r);
                    off += consumed;
                }
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(off, buf.len());
    }
}
