//! The TCP front end: accept loop, per-connection protocol driver, and
//! the command dispatcher tying catalog, evaluators and metrics together.
//!
//! Concurrency model: a dedicated acceptor thread hands each accepted
//! connection to the fixed [`ThreadPool`] as one job (so `threads` bounds
//! the number of concurrently served connections). The job queue is
//! bounded; when it is full the acceptor *sheds* the connection with a
//! single `BUSY` line instead of blocking, so hostile connection floods
//! cannot park the accept thread. Inside a connection, requests are
//! processed strictly in order — one response line per request line,
//! which is what lets clients pipeline naively.
//!
//! Robustness: request lines are framed by the bounded reader in
//! [`crate::framing`] (frame-size limit + read deadline), response writes
//! carry a write deadline, and request handling is held to an overall
//! per-request deadline. Every limit trips a dedicated metrics counter.
//! A [`FaultPlan`] wired into the config injects deterministic faults for
//! the chaos tests.

use std::io::{BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use plan::ResultCache;
use schemes::NumberingScheme;
use xmldom::TreeStats;
use xmlstore::record::StoredKind;
use xpath::{Evaluator, NameIndexed, RuidAxes, SpanAxes, TreeAxes};

use durable::{Applied, FsyncPolicy, WalOp};

use crate::catalog::{Catalog, LoadedDoc};
use crate::fault::{Fault, FaultPlan};
use crate::framing::{read_request_line, ReadOutcome};
use crate::metrics::{Command, Metrics, Protocol};
use crate::mux::{Mux, MuxShared};
use crate::persist::Durability;
use crate::prom::PromCtx;
use crate::proto::{self, Engine, Request, TraceCmd};
use crate::replication::{self, FollowerShared, ReplState};
use crate::trace::{RequestTrace, Span, Tracer};
use crate::wire::{self, WireRequest, WireResponse};
use par::{PoolStats, SubmitError, ThreadPool};

/// How often a parked read wakes up to check deadlines and shutdown.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; port 0 picks a free port (see [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads = maximum concurrently served connections.
    pub threads: usize,
    /// Thread budget for building one document on `LOAD` (area labeling +
    /// name indexing fan out); 1 forces the sequential build.
    pub build_threads: usize,
    /// Catalog shard count.
    pub shards: usize,
    /// Bounded job-queue capacity (pending connections beyond the
    /// workers); connections beyond that are answered `BUSY` and closed.
    pub queue_cap: usize,
    /// `LOAD` partition depth default (`PartitionConfig::by_depth`).
    pub depth: usize,
    /// Whether `LOAD` also populates the identifier-sorted [`XmlStore`]
    /// (`SCAN` needs it).
    pub with_store: bool,
    /// Frame-size limit: longest accepted request line, in bytes
    /// (excluding the terminator). Longer lines get `ERR line too long`.
    pub max_line_bytes: usize,
    /// Read deadline: a request line must complete within this many
    /// milliseconds of its first byte (slow-loris guard). Idle
    /// connections with no partial line pending are not affected.
    pub read_timeout_ms: u64,
    /// Write deadline for one response write, in milliseconds.
    pub write_timeout_ms: u64,
    /// Overall per-request deadline: handling that overruns it answers
    /// `ERR request deadline exceeded` instead of the result.
    pub request_timeout_ms: u64,
    /// Deterministic fault injection for chaos tests; `None` in
    /// production.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Durability directory: when set, startup recovers the catalog from
    /// it (snapshot + WAL replay) and every `LOAD`/`UNLOAD` is logged to
    /// the write-ahead log before it takes effect. `None` keeps the
    /// catalog purely in memory.
    pub data_dir: Option<std::path::PathBuf>,
    /// When the WAL is forced to disk (ignored without `data_dir`).
    pub fsync: FsyncPolicy,
    /// Optional plain-HTTP Prometheus endpoint: when set, a listener on
    /// this address answers every request with the text exposition
    /// (`serve --metrics-addr`). `None` keeps metrics wire-protocol only.
    pub metrics_addr: Option<String>,
    /// Capacity of the slow-query ring served by `SLOWLOG`.
    pub slowlog_capacity: usize,
    /// Capacity of the planned-query result cache (entries).
    pub plan_cache_cap: usize,
    /// Poll-loop threads for the binary protocol's connection
    /// multiplexer; each drains many sockets. The text protocol's
    /// thread-per-connection pool (`threads`) is unaffected.
    pub mux_workers: usize,
    /// Follow a leader at this address (`serve --follow`): bootstrap
    /// from its newest snapshot, tail its WAL, serve reads, and reject
    /// writes with a redirect until `PROMOTE`.
    pub follow: Option<String>,
    /// How long a caught-up follower sleeps between tail polls, in
    /// milliseconds.
    pub repl_poll_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 8,
            build_threads: par::available_threads(),
            shards: 16,
            queue_cap: 64,
            depth: 3,
            with_store: true,
            max_line_bytes: 64 * 1024,
            read_timeout_ms: 2_000,
            write_timeout_ms: 2_000,
            request_timeout_ms: 30_000,
            fault_plan: None,
            data_dir: None,
            fsync: FsyncPolicy::Always,
            metrics_addr: None,
            slowlog_capacity: 128,
            plan_cache_cap: 1024,
            mux_workers: 2,
            follow: None,
            repl_poll_ms: 40,
        }
    }
}

impl ServerConfig {
    pub(crate) fn read_deadline(&self) -> Duration {
        Duration::from_millis(self.read_timeout_ms.max(1))
    }

    pub(crate) fn write_deadline(&self) -> Duration {
        Duration::from_millis(self.write_timeout_ms.max(1))
    }

    pub(crate) fn request_deadline(&self) -> Duration {
        Duration::from_millis(self.request_timeout_ms.max(1))
    }
}

/// The service (constructed via [`Server::start`]).
pub struct Server;

/// A running server: its bound address and the shutdown/join controls.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    catalog: Arc<Catalog>,
    metrics: Arc<Metrics>,
    durability: Option<Arc<Durability>>,
    tracer: Arc<Tracer>,
    pool_stats: Arc<PoolStats>,
    plan_cache: Arc<ResultCache>,
    repl: Arc<ReplState>,
    follower: Option<JoinHandle<()>>,
    metrics_http_addr: Option<SocketAddr>,
    metrics_http: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `config.addr`, spawns the worker pool and the acceptor
    /// thread, and returns immediately.
    ///
    /// With `config.data_dir` set, the catalog is first recovered from
    /// the newest valid snapshot plus the WAL chain; documents whose
    /// persisted sections fail their checksums are quarantined (reported
    /// via `METRICS` and stderr), never served, and never abort startup.
    pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let catalog = Arc::new(Catalog::new(config.shards));
        let metrics = Arc::new(Metrics::new());
        let durability = match &config.data_dir {
            Some(dir) => {
                let (durability, docs, next_doc_id) = Durability::open(dir, config.fsync)?;
                catalog.ensure_next_id(next_doc_id);
                let report = durability.recovery();
                if report.replayed > 0 || report.snapshot_docs > 0 {
                    eprintln!(
                        "[ruid-service] recovered {} document(s) from {} \
                         (snapshot {:?}, {} wal records replayed, {} torn bytes dropped)",
                        docs.len(),
                        dir.display(),
                        report.snapshot_generation,
                        report.replayed,
                        report.truncated_bytes,
                    );
                }
                for (id, reason) in &report.quarantined {
                    eprintln!("[ruid-service] quarantined document {id}: {reason}");
                }
                for state in docs {
                    let mut loaded = LoadedDoc::from_recovered(
                        state.path,
                        state.doc,
                        state.scheme,
                        state.with_store,
                    );
                    // Every recovered document is a fresh committed state:
                    // stamp it from the same process-wide counter live
                    // commits draw from, so no pre-crash cached response
                    // can alias a post-recovery one.
                    loaded.generation = catalog.next_generation();
                    catalog.insert_with_id(state.id, loaded);
                }
                Some(Arc::new(durability))
            }
            None => None,
        };
        let shutdown = Arc::new(AtomicBool::new(false));
        let tracer = Arc::new(Tracer::new(config.slowlog_capacity));
        let plan_cache = Arc::new(ResultCache::new(config.plan_cache_cap));
        let pool = ThreadPool::new(config.threads, config.queue_cap);
        let pool_stats = pool.stats();
        let repl = Arc::new(match &config.follow {
            Some(leader) => ReplState::new_follower(leader.clone()),
            None => ReplState::new_leader(),
        });

        // Optional plain-HTTP Prometheus endpoint: a dedicated listener
        // so scrapers never compete with protocol clients for workers.
        let (metrics_http_addr, metrics_http) = match &config.metrics_addr {
            Some(bind) => {
                let http_listener = TcpListener::bind(bind)?;
                let http_addr = http_listener.local_addr()?;
                let metrics = Arc::clone(&metrics);
                let catalog = Arc::clone(&catalog);
                let durability = durability.clone();
                let tracer = Arc::clone(&tracer);
                let pool_stats = Arc::clone(&pool_stats);
                let plan_cache = Arc::clone(&plan_cache);
                let shutdown = Arc::clone(&shutdown);
                let repl = Arc::clone(&repl);
                let handle = std::thread::Builder::new()
                    .name("ruid-metrics".into())
                    .spawn(move || {
                        serve_metrics_http(
                            &http_listener,
                            &metrics,
                            &catalog,
                            durability.as_deref(),
                            &tracer,
                            &pool_stats,
                            &plan_cache,
                            &repl,
                            &shutdown,
                        );
                    })
                    .expect("spawn metrics thread");
                (Some(http_addr), Some(handle))
            }
            None => (None, None),
        };

        // Monotone request index driving the fault plan, shared by every
        // connection of this server instance — text and binary alike.
        let request_counter = Arc::new(AtomicU64::new(0));
        // The binary protocol's poll-loop multiplexer; sniffed-as-binary
        // connections are handed to it and their pool worker is freed.
        let mux = Arc::new(Mux::start(Arc::new(MuxShared {
            config: config.clone(),
            catalog: Arc::clone(&catalog),
            metrics: Arc::clone(&metrics),
            durability: durability.clone(),
            tracer: Arc::clone(&tracer),
            pool_stats: Arc::clone(&pool_stats),
            plan_cache: Arc::clone(&plan_cache),
            shutdown: Arc::clone(&shutdown),
            request_counter: Arc::clone(&request_counter),
            listen_addr: addr,
            repl: Arc::clone(&repl),
        })));

        // Follower mode: one dedicated thread bootstraps from the leader
        // and tails its WAL; the serving path above answers reads from
        // whatever committed prefix it has applied.
        let follower = config.follow.as_ref().map(|leader| {
            replication::spawn_follower(FollowerShared {
                leader: leader.clone(),
                name: format!("follower@{addr}"),
                poll: Duration::from_millis(config.repl_poll_ms.max(1)),
                catalog: Arc::clone(&catalog),
                durability: durability.clone(),
                plan_cache: Arc::clone(&plan_cache),
                repl: Arc::clone(&repl),
                shutdown: Arc::clone(&shutdown),
            })
        });

        let acceptor = {
            let catalog = Arc::clone(&catalog);
            let metrics = Arc::clone(&metrics);
            let shutdown = Arc::clone(&shutdown);
            let durability = durability.clone();
            let tracer = Arc::clone(&tracer);
            let pool_stats = Arc::clone(&pool_stats);
            let plan_cache = Arc::clone(&plan_cache);
            let repl = Arc::clone(&repl);
            let mux = Arc::clone(&mux);
            std::thread::Builder::new()
                .name("ruid-acceptor".into())
                .spawn(move || {
                    accept_loop(
                        &listener,
                        &pool,
                        &config,
                        &catalog,
                        &metrics,
                        &shutdown,
                        &durability,
                        &tracer,
                        &pool_stats,
                        &plan_cache,
                        &repl,
                        &request_counter,
                        &mux,
                    );
                    pool.shutdown();
                    mux.join();
                    // Best-effort: whatever reached the WAL is on disk
                    // before the process can exit.
                    if let Some(d) = &durability {
                        let _ = d.persist();
                    }
                    // Wake the metrics listener so it observes shutdown.
                    if let Some(http_addr) = metrics_http_addr {
                        let _ = TcpStream::connect(http_addr);
                    }
                    eprint!("[ruid-service] final metrics\n{}", metrics.render_table());
                    if let Some(d) = &durability {
                        eprintln!("{}", d.render_line());
                    }
                })
                .expect("spawn acceptor thread")
        };

        Ok(ServerHandle {
            addr,
            shutdown,
            acceptor: Some(acceptor),
            catalog,
            metrics,
            durability,
            tracer,
            pool_stats,
            plan_cache,
            repl,
            follower,
            metrics_http_addr,
            metrics_http,
        })
    }
}

/// Answers every HTTP request on `listener` with the Prometheus text
/// exposition: read the request head (discarded — every path scrapes),
/// write one `HTTP/1.0 200` response, close. One connection at a time is
/// plenty for a scraper, and it keeps the endpoint allocation-bounded.
#[allow(clippy::too_many_arguments)]
fn serve_metrics_http(
    listener: &TcpListener,
    metrics: &Metrics,
    catalog: &Catalog,
    durability: Option<&Durability>,
    tracer: &Tracer,
    pool_stats: &PoolStats,
    plan_cache: &ResultCache,
    repl: &ReplState,
    shutdown: &AtomicBool,
) {
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = stream else { continue };
        let _ = stream.set_read_timeout(Some(Duration::from_millis(1_000)));
        let _ = stream.set_write_timeout(Some(Duration::from_millis(1_000)));
        // Drain the request head up to the blank line (bounded).
        let mut head = Vec::new();
        let mut buf = [0u8; 1024];
        loop {
            match stream.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => {
                    head.extend_from_slice(&buf[..n]);
                    if head.windows(4).any(|w| w == b"\r\n\r\n")
                        || head.windows(2).any(|w| w == b"\n\n")
                        || head.len() > 16 * 1024
                    {
                        break;
                    }
                }
            }
        }
        let body = crate::prom::render(&PromCtx {
            metrics,
            catalog: Some(catalog),
            durability,
            tracer: Some(tracer),
            pool: Some(pool_stats),
            plan_cache: Some(plan_cache),
            repl: Some(repl),
        });
        let response = format!(
            "HTTP/1.0 200 OK\r\n\
             Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
             Content-Length: {}\r\n\
             Connection: close\r\n\r\n{body}",
            body.len(),
        );
        let _ = stream.write_all(response.as_bytes());
        let _ = stream.flush();
    }
}

impl ServerHandle {
    /// The actual bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared catalog — lets an embedding process pre-load documents
    /// without going through the wire protocol.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// The shared metrics.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// The durability manager, when the server was started with a data
    /// directory — embedders that pre-load documents directly into the
    /// catalog must log them through this to keep the WAL authoritative.
    pub fn durability(&self) -> Option<&Arc<Durability>> {
        self.durability.as_ref()
    }

    /// The request tracer behind `TRACE` / `SLOWLOG`.
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// The worker pool's queue statistics.
    pub fn pool_stats(&self) -> &Arc<PoolStats> {
        &self.pool_stats
    }

    /// The planned-query result cache.
    pub fn plan_cache(&self) -> &Arc<ResultCache> {
        &self.plan_cache
    }

    /// The replication state: role, lag gauges, shipping counters.
    pub fn repl(&self) -> &Arc<ReplState> {
        &self.repl
    }

    /// The bound address of the Prometheus HTTP endpoint, when enabled.
    pub fn metrics_http_addr(&self) -> Option<SocketAddr> {
        self.metrics_http_addr
    }

    /// True once `SHUTDOWN` was received or [`ServerHandle::stop`] ran.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown and waits for the acceptor + workers to finish.
    pub fn stop(mut self) {
        self.begin_stop();
        self.join_inner();
    }

    /// Waits for the server to finish (e.g. after a client `SHUTDOWN`).
    pub fn join(mut self) {
        self.join_inner();
    }

    fn begin_stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the acceptor (and metrics listener) if blocked in accept().
        let _ = TcpStream::connect(self.addr);
        if let Some(http_addr) = self.metrics_http_addr {
            let _ = TcpStream::connect(http_addr);
        }
    }

    fn join_inner(&mut self) {
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.follower.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.metrics_http.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.begin_stop();
            self.join_inner();
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn accept_loop(
    listener: &TcpListener,
    pool: &ThreadPool,
    config: &ServerConfig,
    catalog: &Arc<Catalog>,
    metrics: &Arc<Metrics>,
    shutdown: &Arc<AtomicBool>,
    durability: &Option<Arc<Durability>>,
    tracer: &Arc<Tracer>,
    pool_stats: &Arc<PoolStats>,
    plan_cache: &Arc<ResultCache>,
    repl: &Arc<ReplState>,
    request_counter: &Arc<AtomicU64>,
    mux: &Arc<Mux>,
) {
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        metrics.record_connection();
        // A second handle to the socket, kept out of the job closure so
        // the acceptor can still answer BUSY if the queue rejects it.
        let shed_handle = stream.try_clone();
        let catalog = Arc::clone(catalog);
        let metrics_job = Arc::clone(metrics);
        let shutdown = Arc::clone(shutdown);
        let config = config.clone();
        let durability = durability.clone();
        let tracer = Arc::clone(tracer);
        let pool_stats = Arc::clone(pool_stats);
        let plan_cache = Arc::clone(plan_cache);
        let repl = Arc::clone(repl);
        let request_counter = Arc::clone(request_counter);
        let mux = Arc::clone(mux);
        let submitted = pool.try_execute(move || {
            let _ = serve_connection(
                stream,
                &config,
                &catalog,
                &metrics_job,
                &shutdown,
                durability.as_deref(),
                &tracer,
                &pool_stats,
                &plan_cache,
                &repl,
                &request_counter,
                &mux,
            );
        });
        match submitted {
            Ok(()) => {}
            Err(SubmitError::Full) => {
                // Load shedding: one BUSY line, then close — never park
                // the accept thread on a full queue. (The job closure
                // holding the primary stream handle was dropped by the
                // rejected submit.)
                metrics.record_shed();
                if let Ok(mut stream) = shed_handle {
                    let _ = stream
                        .set_write_timeout(Some(Duration::from_millis(500)));
                    let _ = stream.write_all(b"BUSY\n");
                    let _ = stream.flush();
                }
            }
            Err(SubmitError::Closed) => break,
        }
    }
}

/// Outcome of one deadline-guarded response write.
enum WriteOutcome {
    /// The line went out in full.
    Written,
    /// The write deadline expired or the peer vanished — close.
    Lost,
}

/// Writes `response` + `\n`, translating write timeouts and broken pipes
/// into [`WriteOutcome::Lost`] (with the deadline metric bumped).
fn write_response(
    writer: &mut TcpStream,
    response: &str,
    metrics: &Metrics,
) -> WriteOutcome {
    let write = writer
        .write_all(response.as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .and_then(|()| writer.flush());
    match write {
        Ok(()) => {
            metrics.add_net_written(response.len() as u64 + 1);
            WriteOutcome::Written
        }
        Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
            metrics.record_deadline_write();
            WriteOutcome::Lost
        }
        Err(_) => WriteOutcome::Lost,
    }
}

/// Drives one connection: sniff the protocol from the first byte, then
/// either hand the socket to the binary multiplexer or run the text
/// loop — read a framed line, dispatch under the request deadline, write
/// one response line back.
#[allow(clippy::too_many_arguments)]
fn serve_connection(
    stream: TcpStream,
    config: &ServerConfig,
    catalog: &Catalog,
    metrics: &Metrics,
    shutdown: &AtomicBool,
    durability: Option<&Durability>,
    tracer: &Tracer,
    pool_stats: &PoolStats,
    plan_cache: &ResultCache,
    repl: &ReplState,
    request_counter: &AtomicU64,
    mux: &Mux,
) -> std::io::Result<()> {
    let ctx = ServiceCtx {
        config,
        catalog,
        metrics,
        durability,
        tracer,
        pool_stats,
        plan_cache,
        repl,
    };
    // The short poll timeout lets the worker notice server shutdown and
    // expired deadlines even while a client holds its connection open
    // silently; the real deadlines are enforced above it.
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    stream.set_write_timeout(Some(config.write_deadline()))?;
    stream.set_nodelay(true)?;
    // Protocol negotiation is one peeked byte: [`wire::REQ_MAGIC`] can
    // never start a UTF-8 text line, so the first byte decides which
    // front end drives the connection.
    let mut first = [0u8; 1];
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        match stream.peek(&mut first) {
            Ok(0) => return Ok(()), // closed before the first byte
            Ok(_) => break,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    if first[0] == wire::REQ_MAGIC {
        // Binary: this worker's job ends here — the multiplexer drains
        // the socket from its poll loop, freeing the pool slot.
        stream.set_nonblocking(true)?;
        mux.adopt(stream);
        return Ok(());
    }
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut buf = Vec::new();
    loop {
        let outcome = read_request_line(
            &mut reader,
            &mut buf,
            config.max_line_bytes,
            config.read_deadline(),
            shutdown,
            metrics.net_read_counter(),
        )?;
        match outcome {
            ReadOutcome::Line => metrics.record_protocol_request(Protocol::Text),
            ReadOutcome::Eof | ReadOutcome::Shutdown => return Ok(()),
            ReadOutcome::TornEof => {
                metrics.record_torn();
                return Ok(());
            }
            ReadOutcome::DeadlineExpired => {
                metrics.record_deadline_read();
                metrics.record(Command::Invalid, true, config.read_deadline());
                let _ = write_response(
                    &mut writer,
                    &format!(
                        "ERR read deadline exceeded ({} ms to complete a request line)",
                        config.read_timeout_ms
                    ),
                    metrics,
                );
                return Ok(());
            }
            ReadOutcome::Oversized { drained } => {
                metrics.record_oversized();
                metrics.record(Command::Invalid, true, Duration::ZERO);
                let reply = format!(
                    "ERR line too long (limit {} bytes)",
                    config.max_line_bytes
                );
                match write_response(&mut writer, &reply, metrics) {
                    WriteOutcome::Written if drained => continue,
                    _ => return Ok(()),
                }
            }
            ReadOutcome::BadUtf8 => {
                metrics.record(Command::Invalid, true, Duration::ZERO);
                match write_response(&mut writer, "ERR invalid utf-8", metrics) {
                    WriteOutcome::Written => continue,
                    WriteOutcome::Lost => return Ok(()),
                }
            }
        }
        let line = std::str::from_utf8(&buf).expect("framing validated utf-8");
        let fault = config
            .fault_plan
            .as_ref()
            .and_then(|plan| {
                plan.fault_at(request_counter.fetch_add(1, Ordering::Relaxed))
            })
            .cloned();
        match fault {
            Some(Fault::ForceBusy) => {
                metrics.record_shed();
                match write_response(&mut writer, "BUSY", metrics) {
                    WriteOutcome::Written => continue,
                    WriteOutcome::Lost => return Ok(()),
                }
            }
            Some(Fault::EarlyEof) => return Ok(()),
            _ => {}
        }
        let started = Instant::now();
        // One relaxed load decides the whole per-request tracing cost.
        let mut request_trace = tracer.enabled().then(|| tracer.begin());
        if let Some(Fault::StallHandler { ms }) = fault {
            // The stall happens "inside" handling, so it counts against
            // the per-request deadline.
            std::thread::sleep(Duration::from_millis(ms));
        }
        let (command, mut response) = handle_line(line, &ctx, request_trace.as_mut());
        let elapsed = started.elapsed();
        let mut is_error = response.starts_with("ERR");
        if elapsed > config.request_deadline() {
            metrics.record_deadline_request();
            response = format!(
                "ERR request deadline exceeded ({} ms limit)",
                config.request_timeout_ms
            );
            is_error = true;
        }
        metrics.record(command, is_error, elapsed);
        if let Some(Fault::DelayMs { ms }) = fault {
            std::thread::sleep(Duration::from_millis(ms));
        }
        if let Some(Fault::TornWrite { bytes }) = fault {
            let mut full = response;
            full.push('\n');
            let n = bytes.min(full.len());
            if writer.write_all(&full.as_bytes()[..n]).and_then(|()| writer.flush()).is_ok() {
                metrics.add_net_written(n as u64);
            }
            return Ok(());
        }
        let write_started = Instant::now();
        let write_outcome = write_response(&mut writer, &response, metrics);
        if let Some(t) = request_trace.as_mut() {
            t.record(Span::Write, write_started.elapsed().as_nanos() as u64);
        }
        if let Some(t) = &request_trace {
            tracer.observe(command, line, started.elapsed().as_nanos() as u64, t);
        }
        if let WriteOutcome::Lost = write_outcome {
            return Ok(());
        }
        if command == Command::Shutdown && !is_error {
            shutdown.store(true, Ordering::SeqCst);
            // Wake the acceptor so it observes the flag.
            if let Ok(local) = reader.get_ref().local_addr() {
                let _ = TcpStream::connect(local);
            }
            return Ok(());
        }
    }
}

/// Everything the dispatcher reads, bundled so new layers (tracing, the
/// pool's stats, …) don't keep growing a positional argument list.
/// Crate-visible because the binary multiplexer borrows one per request
/// out of its owned [`crate::mux::MuxShared`].
#[derive(Clone, Copy)]
pub(crate) struct ServiceCtx<'a> {
    pub(crate) config: &'a ServerConfig,
    pub(crate) catalog: &'a Catalog,
    pub(crate) metrics: &'a Metrics,
    pub(crate) durability: Option<&'a Durability>,
    pub(crate) tracer: &'a Tracer,
    pub(crate) pool_stats: &'a PoolStats,
    pub(crate) plan_cache: &'a ResultCache,
    pub(crate) repl: &'a ReplState,
}

/// Runs `f`, charging its wall time to `span` when the request is traced.
fn timed<R>(
    trace: &mut Option<&mut RequestTrace>,
    span: Span,
    f: impl FnOnce() -> R,
) -> R {
    match trace {
        None => f(),
        Some(t) => {
            let started = Instant::now();
            let r = f();
            t.record(span, started.elapsed().as_nanos() as u64);
            r
        }
    }
}

/// Parses and executes one request line; returns the metrics bucket and
/// the single-line response.
fn handle_line(
    line: &str,
    ctx: &ServiceCtx<'_>,
    mut trace: Option<&mut RequestTrace>,
) -> (Command, String) {
    let parsed = timed(&mut trace, Span::Parse, || proto::parse(line));
    match parsed {
        Ok(request) => {
            let command = request.command();
            let response = match execute(request, ctx, trace) {
                Ok(ok) => ok,
                Err(e) => format!("ERR {}", proto::escape_line(&e)),
            };
            (command, response)
        }
        Err(e) => (Command::Invalid, format!("ERR {e}")),
    }
}

/// The result of executing one binary-protocol frame.
pub(crate) struct FrameOutcome {
    /// What to encode back (under the request's own id).
    pub(crate) response: WireResponse,
    /// True when this was a successful `SHUTDOWN` — the caller must set
    /// the server-wide flag and wake the acceptor.
    pub(crate) shutdown: bool,
}

/// A one-line rendering of a binary request for the slowlog, mirroring
/// what the text protocol would have logged.
fn describe_wire(request: &WireRequest) -> String {
    match request {
        WireRequest::Ping => "PING".into(),
        WireRequest::Query { doc, engine, xpath } => {
            format!("QUERY {doc} {xpath} {engine:?}")
        }
        WireRequest::Label { doc, xpath } => format!("LABEL {doc} {xpath}"),
        WireRequest::Parent { doc, label } => {
            format!("PARENT {doc} {}", proto::fmt_label(label))
        }
        WireRequest::Get { doc, label } => {
            format!("GET {doc} {}", proto::fmt_label(label))
        }
        WireRequest::MQuery { doc, xpaths } => {
            format!("MQUERY {doc} [{} queries]", xpaths.len())
        }
        WireRequest::MLabel { doc, xpaths } => {
            format!("MLABEL {doc} [{} queries]", xpaths.len())
        }
        WireRequest::LoadStream { name, events } => {
            format!("LOADSTREAM {name} [{} bytes]", events.len())
        }
        WireRequest::Text { line } => line.clone(),
        WireRequest::ReplHello { follower } => format!("REPL HELLO {follower}"),
        WireRequest::ReplSnapshot { generation } => format!("REPL SNAPSHOT {generation}"),
        WireRequest::ReplTail { generation, offset, .. } => {
            format!("REPL TAIL {generation} {offset}")
        }
        WireRequest::ReplAck { generation, seq, bye, follower } => {
            format!("REPL ACK {follower} {generation} {seq} bye={bye}")
        }
    }
}

/// The batch body shared by `MQUERY`/`MLABEL`: pin the document's
/// snapshot `Arc` once, answer every sub-query from the planned engine
/// (and its result cache) against that one pinned generation. A missing
/// document still answers one line per sub-query, so the batch reply
/// always has the arity the client sent.
fn run_batch(
    ctx: &ServiceCtx<'_>,
    trace: &mut Option<&mut RequestTrace>,
    doc: u64,
    xpaths: &[String],
) -> Vec<String> {
    ctx.metrics.record_batch_size(xpaths.len() as u64);
    let loaded = match timed(trace, Span::Lookup, || fetch(ctx.catalog, doc)) {
        Ok(loaded) => loaded,
        Err(e) => {
            let err = format!("ERR {}", proto::escape_line(&e));
            return vec![err; xpaths.len()];
        }
    };
    timed(trace, Span::Eval, || {
        xpaths
            .iter()
            .map(|xpath| {
                match planned_cached(&loaded, doc, xpath, ctx.plan_cache, ctx.metrics) {
                    Ok(line) => line,
                    Err(e) => format!("ERR {}", proto::escape_line(&e)),
                }
            })
            .collect()
    })
}

/// Executes one decoded binary request end to end — fault stall, the
/// per-request deadline, metrics, slowlog — and returns the response
/// body. Single verbs run through the same [`execute`] dispatcher as
/// their text spellings, so byte-identical responses across the two
/// front ends hold by construction.
pub(crate) fn execute_frame(
    ctx: &ServiceCtx<'_>,
    request: WireRequest,
    stall_ms: Option<u64>,
) -> FrameOutcome {
    let ServiceCtx { config, metrics, tracer, .. } = *ctx;
    let started = Instant::now();
    let mut request_trace = tracer.enabled().then(|| tracer.begin());
    let trace_line = request_trace.as_ref().map(|_| describe_wire(&request));
    if let Some(ms) = stall_ms {
        // The stall happens "inside" handling, so it counts against the
        // per-request deadline — same as the text path.
        std::thread::sleep(Duration::from_millis(ms));
    }
    let single = |request: Request, trace: Option<&mut RequestTrace>| {
        let command = request.command();
        let response = match execute(request, ctx, trace) {
            Ok(ok) => ok,
            Err(e) => format!("ERR {}", proto::escape_line(&e)),
        };
        (command, WireResponse::Line(response))
    };
    let mut trace = request_trace.as_mut();
    let (command, mut response) = match request {
        WireRequest::Ping => single(Request::Ping, trace.take()),
        WireRequest::Query { doc, engine, xpath } => {
            single(Request::Query { doc, xpath, engine }, trace.take())
        }
        WireRequest::Label { doc, xpath } => {
            single(Request::Label { doc, xpath }, trace.take())
        }
        WireRequest::Parent { doc, label } => {
            single(Request::Parent { doc, label }, trace.take())
        }
        WireRequest::Get { doc, label } => {
            single(Request::Get { doc, label }, trace.take())
        }
        WireRequest::LoadStream { name, events } => {
            single(Request::LoadStream { name, events }, trace.take())
        }
        WireRequest::Text { line } => {
            let (command, response) = handle_line(&line, ctx, trace.take());
            (command, WireResponse::Line(response))
        }
        WireRequest::MQuery { doc, xpaths } => {
            (Command::MQuery, WireResponse::Batch(run_batch(ctx, &mut trace, doc, &xpaths)))
        }
        WireRequest::MLabel { doc, xpaths } => {
            (Command::MLabel, WireResponse::Batch(run_batch(ctx, &mut trace, doc, &xpaths)))
        }
        WireRequest::ReplHello { follower } => {
            (Command::ReplHello, replication::handle_hello(ctx, &follower))
        }
        WireRequest::ReplSnapshot { generation } => {
            (Command::ReplSnapshot, replication::handle_snapshot(ctx, generation))
        }
        WireRequest::ReplTail { generation, offset, max_bytes } => {
            (Command::ReplTail, replication::handle_tail(ctx, generation, offset, max_bytes))
        }
        WireRequest::ReplAck { generation, seq, bye, follower } => {
            (Command::ReplAck, replication::handle_ack(ctx, &follower, generation, seq, bye))
        }
    };
    let elapsed = started.elapsed();
    let mut is_error = match &response {
        WireResponse::Line(line) => line.starts_with("ERR"),
        WireResponse::Batch(lines) => lines.iter().any(|line| line.starts_with("ERR")),
        // A blob is raw payload bytes; errors on the replication verbs
        // are always reported as `Line`s.
        WireResponse::Blob(_) => false,
    };
    if elapsed > config.request_deadline() {
        metrics.record_deadline_request();
        response = WireResponse::Line(format!(
            "ERR request deadline exceeded ({} ms limit)",
            config.request_timeout_ms
        ));
        is_error = true;
    }
    metrics.record(command, is_error, elapsed);
    if let Some(t) = &request_trace {
        let line = trace_line.as_deref().unwrap_or("");
        tracer.observe(command, line, started.elapsed().as_nanos() as u64, t);
    }
    FrameOutcome { response, shutdown: command == Command::Shutdown && !is_error }
}

fn fetch(catalog: &Catalog, id: u64) -> Result<Arc<LoadedDoc>, String> {
    catalog.get(id).ok_or_else(|| format!("no document {id} (use LOAD / LIST)"))
}

/// Parses the `INSERT` fragment into the single node it denotes: bare
/// text when it doesn't start with `<`, otherwise one childless piece of
/// markup (empty element, comment, or processing instruction). Structural
/// updates are node-at-a-time — the WAL logs exactly one node per record,
/// so replay granularity matches the paper's per-area relabel costs.
fn parse_fragment(fragment: &str) -> Result<durable::NodeContent, String> {
    if fragment.is_empty() {
        return Err("empty fragment".into());
    }
    if !fragment.starts_with('<') {
        return Ok(durable::NodeContent::Text(fragment.to_owned()));
    }
    // Wrapping makes comments/PIs/attributes parseable by the ordinary
    // document parser without a separate fragment grammar.
    let doc = xmldom::Document::parse(&format!("<w>{fragment}</w>"))
        .map_err(|e| format!("bad fragment: {e}"))?;
    let root = doc.root_element().ok_or("bad fragment")?;
    let mut nodes = doc.children(root);
    let node = nodes.next().ok_or("bad fragment: no node")?;
    if nodes.next().is_some() {
        return Err("fragment must be a single node".into());
    }
    if doc.children(node).next().is_some() {
        return Err("fragment must be childless (insert one node per request)".into());
    }
    Ok(durable::NodeContent::from_node(&doc, node))
}

/// The shared commit path of `INSERT`/`DELETE`/`RELABEL`.
///
/// Writers serialize on the catalog's writer lock so every copy-on-write
/// bundle is staged from the latest committed state; readers never touch
/// that lock — they keep answering from their pinned `Arc` snapshots. The
/// new bundle is built and validated *before* the WAL append, so a
/// rejected op never reaches the log, and the pointer swap runs inside
/// `log_with`, so WAL order is commit order.
fn commit_update(
    ctx: &ServiceCtx<'_>,
    trace: &mut Option<&mut RequestTrace>,
    doc_id: u64,
    op: WalOp,
    command: Command,
) -> Result<String, String> {
    let ServiceCtx { catalog, metrics, durability, .. } = *ctx;
    let _writers = catalog.begin_write();
    let loaded = timed(trace, Span::Lookup, || fetch(catalog, doc_id))?;
    let generation = catalog.next_generation();
    let (next, applied) =
        timed(trace, Span::Eval, || loaded.apply_update(&op, generation))?;
    let stats = *applied.stats();
    let detail = match &applied {
        Applied::Inserted { node, .. } => {
            format!("label={}", proto::fmt_label(&next.scheme.label_of(*node)))
        }
        Applied::Deleted { nodes, .. } => format!("removed={nodes}"),
        Applied::Repartitioned { .. } => format!("areas={}", next.scheme.area_count()),
    };
    let installed = match durability {
        Some(d) => {
            timed(trace, Span::Wal, || d.log_with(&op, || catalog.replace(doc_id, next)))?
        }
        None => catalog.replace(doc_id, next),
    };
    if !installed {
        // Unreachable while unload also serializes on the writer lock,
        // but never report a commit the catalog didn't install.
        return Err(format!("no document {doc_id}"));
    }
    metrics.record_update(command);
    Ok(format!(
        "OK {detail} generation={generation} relabeled={} dropped={} full_rebuild={}",
        stats.relabeled, stats.dropped, stats.full_rebuild,
    ))
}

fn execute(
    request: Request,
    ctx: &ServiceCtx<'_>,
    mut trace: Option<&mut RequestTrace>,
) -> Result<String, String> {
    let ServiceCtx {
        config,
        catalog,
        metrics,
        durability,
        tracer,
        pool_stats,
        plan_cache,
        repl,
    } = *ctx;
    let trace = &mut trace;
    // A follower's catalog is the leader's replayed history — local
    // writes would fork it. Reject them with a redirect; reads (and the
    // replication verbs themselves) flow normally.
    if matches!(
        request,
        Request::Load { .. }
            | Request::LoadStream { .. }
            | Request::Unload(_)
            | Request::Insert { .. }
            | Request::Delete { .. }
            | Request::Relabel(_)
    ) {
        if let Some(leader) = repl.leader_addr() {
            return Err(format!(
                "read-only replica: writes go to the leader at {leader} \
                 (PROMOTE to accept writes here)"
            ));
        }
    }
    match request {
        Request::Ping => Ok("OK pong".into()),
        Request::Load { path, depth } => {
            let exec = par::Executor::new(config.build_threads);
            // Read the text once: the build parses it, and the durable
            // path logs the same bytes so replay never depends on the
            // origin file surviving (or staying unchanged).
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {path}: {e}"))?;
            let mut loaded = timed(trace, Span::Eval, || {
                LoadedDoc::build_with(&path, &text, depth, config.with_store, &exec)
            })?;
            let nodes = loaded.doc.node_count();
            let areas = loaded.scheme.area_count();
            // Result-cache generation: one process-wide monotonic counter
            // covers loads and structural updates alike, so a generation
            // can never alias across commits (WAL sequence numbers can't
            // serve here — they reset on snapshot rotation).
            loaded.generation = catalog.next_generation();
            let id = match durability {
                Some(d) => {
                    let id = catalog.reserve_id();
                    let op = WalOp::Load {
                        doc_id: id,
                        path: path.clone(),
                        config: *loaded.scheme.config(),
                        with_store: loaded.store.is_some(),
                        xml: text,
                    };
                    // WAL first: if the append fails the catalog is
                    // untouched and the client sees the error.
                    timed(trace, Span::Wal, || {
                        d.log_with(&op, || catalog.insert_with_id(id, loaded))
                    })?;
                    id
                }
                None => {
                    let id = catalog.reserve_id();
                    catalog.insert_with_id(id, loaded);
                    id
                }
            };
            Ok(format!("OK id={id} nodes={nodes} areas={areas}"))
        }
        Request::LoadStream { name, events } => {
            let exec = par::Executor::new(config.build_threads);
            // Same shape as LOAD, except the tree comes straight from the
            // interval-encoded event stream — no XML text exists at any
            // point, and the WAL logs the events verbatim so replay
            // rebuilds the identical tree.
            let mut loaded = timed(trace, Span::Eval, || {
                LoadedDoc::build_stream(
                    &name,
                    &events,
                    config.depth,
                    config.with_store,
                    &exec,
                )
            })?;
            let nodes = loaded.doc.node_count();
            let areas = loaded.scheme.area_count();
            loaded.generation = catalog.next_generation();
            let id = match durability {
                Some(d) => {
                    let id = catalog.reserve_id();
                    let op = WalOp::LoadStream {
                        doc_id: id,
                        path: name.clone(),
                        config: *loaded.scheme.config(),
                        with_store: loaded.store.is_some(),
                        events,
                    };
                    timed(trace, Span::Wal, || {
                        d.log_with(&op, || catalog.insert_with_id(id, loaded))
                    })?;
                    id
                }
                None => {
                    let id = catalog.reserve_id();
                    catalog.insert_with_id(id, loaded);
                    id
                }
            };
            Ok(format!("OK id={id} nodes={nodes} areas={areas}"))
        }
        Request::Unload(id) => {
            // Unload is a structural writer too: holding the writer lock
            // keeps an in-flight INSERT/DELETE from appending a WAL record
            // for this document *after* its Unload record.
            let _writers = catalog.begin_write();
            let removed = match durability {
                Some(d) => {
                    if catalog.get(id).is_none() {
                        return Err(format!("no document {id}"));
                    }
                    timed(trace, Span::Wal, || {
                        d.log_with(&WalOp::Unload { doc_id: id }, || catalog.remove(id))
                    })?
                }
                None => catalog.remove(id),
            };
            if removed {
                plan_cache.purge_doc(id);
                Ok(format!("OK unloaded {id}"))
            } else {
                Err(format!("no document {id}"))
            }
        }
        Request::List => {
            let entries = catalog.entries();
            let mut out = format!("OK {}", entries.len());
            for (id, path) in entries {
                out.push_str(&format!(" {id}={}", proto::escape_line(&path)));
            }
            Ok(out)
        }
        Request::Label { doc, xpath } => {
            let loaded = timed(trace, Span::Lookup, || fetch(catalog, doc))?;
            timed(trace, Span::Eval, || {
                planned_cached(&loaded, doc, &xpath, plan_cache, metrics)
            })
        }
        Request::Parent { doc, label } => {
            let loaded = timed(trace, Span::Lookup, || fetch(catalog, doc))?;
            // Pure arithmetic (Fig. 6) — no node lookup, no I/O. The
            // checked form turns fabricated labels into ERR lines instead
            // of panicking the worker.
            match timed(trace, Span::Eval, || loaded.scheme.rparent_checked(&label))? {
                Some(parent) => Ok(format!("OK {}", proto::fmt_label(&parent))),
                None => Ok("OK none".into()),
            }
        }
        Request::Query { doc, xpath, engine } => {
            let loaded = timed(trace, Span::Lookup, || fetch(catalog, doc))?;
            if engine == Engine::Planned {
                return timed(trace, Span::Eval, || {
                    planned_cached(&loaded, doc, &xpath, plan_cache, metrics)
                });
            }
            let (hits, steps) =
                timed(trace, Span::Eval, || run_query(&loaded, &xpath, engine))?;
            metrics.record_axis_steps(&steps);
            Ok(format_hits(&loaded, &hits))
        }
        Request::Explain { doc, xpath } => {
            let loaded = timed(trace, Span::Lookup, || fetch(catalog, doc))?;
            // Peek before running: whether a planned QUERY/LABEL for this
            // exact expression would currently be served from cache.
            let cached = plan_cache.peek(doc, &xpath, loaded.generation);
            let (hits, compiled, stats) =
                timed(trace, Span::Eval, || run_planned(&loaded, &xpath, metrics))?;
            let mut lines = vec![format!(
                "cache={} generation={}",
                if cached { "hit" } else { "miss" },
                loaded.generation,
            )];
            lines.extend(plan::render_explain(
                &xpath,
                &compiled,
                &stats,
                &loaded.summary,
                &loaded.doc,
                hits.len(),
            ));
            Ok(format!("OK {}", proto::escape_line(&lines.join("\n"))))
        }
        Request::Scan { doc, global } => {
            let loaded = timed(trace, Span::Lookup, || fetch(catalog, doc))?;
            let store = loaded
                .store
                .as_ref()
                .ok_or("document loaded without a store (SCAN unavailable)")?;
            let rows = timed(trace, Span::Eval, || store.scan_area(global));
            let mut out = format!("OK {}", rows.len());
            for row in rows {
                let kind = match row.kind {
                    StoredKind::Element => "elem",
                    StoredKind::Text => "text",
                    StoredKind::Comment => "comment",
                    StoredKind::ProcessingInstruction => "pi",
                };
                out.push(' ');
                out.push_str(&proto::fmt_label(&row.label));
                out.push('#');
                out.push_str(kind);
                out.push('#');
                out.push_str(&proto::escape_line(&row.name.replace(' ', "_")));
            }
            Ok(out)
        }
        Request::Get { doc, label } => {
            let loaded = timed(trace, Span::Lookup, || fetch(catalog, doc))?;
            timed(trace, Span::Eval, || {
                let node = loaded
                    .scheme
                    .node_of(&label)
                    .ok_or_else(|| format!("no node carries {}", proto::fmt_label(&label)))?;
                Ok(format!(
                    "OK {}",
                    proto::escape_line(&loaded.doc.subtree_to_xml_string(node))
                ))
            })
        }
        Request::Stats(id) => {
            let loaded = timed(trace, Span::Lookup, || fetch(catalog, id))?;
            let root = loaded.doc.root_element().ok_or("document has no root element")?;
            let tree = TreeStats::collect(&loaded.doc, root);
            Ok(format!(
                "OK nodes={} elements={} maxdepth={} maxfanout={} areas={} kappa={} \
                 kbytes={} labelbits={} names={}",
                tree.node_count,
                tree.element_count,
                tree.max_depth,
                tree.max_fanout,
                loaded.scheme.area_count(),
                loaded.scheme.kappa(),
                loaded.scheme.ktable().memory_bytes(),
                loaded.scheme.label_width_bits(),
                loaded.doc.names().len(),
            ))
        }
        Request::Metrics { prom } => {
            if prom {
                let body = crate::prom::render(&PromCtx {
                    metrics,
                    catalog: Some(catalog),
                    durability,
                    tracer: Some(tracer),
                    pool: Some(pool_stats),
                    plan_cache: Some(plan_cache),
                    repl: Some(repl),
                });
                return Ok(format!("OK {}", proto::escape_line(&body)));
            }
            Ok(match durability {
                Some(d) => format!(
                    "OK {} {} {}",
                    metrics.render_line(),
                    d.render_line(),
                    repl.render_line()
                ),
                None => format!(
                    "OK {} durability=off {}",
                    metrics.render_line(),
                    repl.render_line()
                ),
            })
        }
        Request::Snapshot => {
            let d = durability.ok_or("durability disabled (start with --data-dir)")?;
            let (generation, docs) = d.snapshot(catalog)?;
            Ok(format!("OK generation={generation} docs={docs}"))
        }
        Request::Persist => {
            let d = durability.ok_or("durability disabled (start with --data-dir)")?;
            let (records, bytes) = d.persist()?;
            Ok(format!("OK records={records} bytes={bytes}"))
        }
        Request::Insert { doc, parent, position, fragment } => {
            let content = parse_fragment(&fragment)?;
            let op = WalOp::Insert { doc_id: doc, parent, position, content };
            commit_update(ctx, trace, doc, op, Command::Insert)
        }
        Request::Delete { doc, label } => {
            commit_update(ctx, trace, doc, WalOp::Delete { doc_id: doc, label }, Command::Delete)
        }
        Request::Relabel(doc) => {
            commit_update(ctx, trace, doc, WalOp::Repartition { doc_id: doc }, Command::Relabel)
        }
        Request::Trace(cmd) => {
            match cmd {
                TraceCmd::Status => {}
                TraceCmd::On => tracer.enable(),
                TraceCmd::Off => tracer.disable(),
                TraceCmd::ThresholdMs(ms) => tracer.set_threshold_ms(ms),
            }
            Ok(format!("OK {}", tracer.render_status()))
        }
        Request::Slowlog(n) => Ok(format!("OK {}", tracer.render_slowlog(n))),
        Request::Promote => {
            if !repl.is_follower() {
                return Ok("OK role=leader promoted=false".into());
            }
            // The role flips only after the follower thread has stopped
            // applying, so no shipped record can land after a write this
            // newly-promoted leader accepts.
            repl.request_promotion();
            let deadline = Instant::now() + Duration::from_secs(10);
            while repl.is_follower() {
                if Instant::now() >= deadline {
                    return Err("promotion pending: follower thread did not stop in time"
                        .into());
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Ok("OK role=leader promoted=true".into())
        }
        Request::Shutdown => {
            // The OK-ack is a durability promise: everything the WAL
            // acknowledged must survive a kill right after it. Force the
            // log down before replying (a failed fsync fails the verb).
            if let Some(d) = durability {
                timed(trace, Span::Wal, || d.persist())?;
            }
            Ok("OK bye".into())
        }
    }
}

/// The `OK <count> <label>...` rendering shared by `QUERY` and `LABEL`
/// (and the planned-query result cache).
fn format_hits(loaded: &LoadedDoc, hits: &[xmldom::NodeId]) -> String {
    let mut out = format!("OK {}", hits.len());
    for &node in hits {
        out.push(' ');
        out.push_str(&proto::fmt_label(&loaded.scheme.label_of(node)));
    }
    out
}

/// Plans and executes one query with the planner metrics recorded:
/// planner-time histogram, per-operator counters, and the fallback
/// evaluator's axis steps.
fn run_planned(
    loaded: &LoadedDoc,
    xpath: &str,
    metrics: &Metrics,
) -> Result<(Vec<xmldom::NodeId>, plan::Plan, plan::ExecStats), String> {
    let path = xpath::parse(xpath).map_err(|e| e.to_string())?;
    let planner_started = Instant::now();
    let compiled = plan::plan(&path, &loaded.summary, &loaded.doc);
    metrics.record_planner_time(planner_started.elapsed());
    let ev = Evaluator::new(
        &loaded.doc,
        NameIndexed::new(
            TreeAxes::with_order(&loaded.doc, &loaded.order),
            &loaded.doc,
            &loaded.index,
        ),
    );
    let (hits, stats) =
        plan::execute(&compiled, &loaded.doc, &loaded.summary, &loaded.order, &ev)
            .map_err(|e| e.to_string())?;
    metrics.record_plan_ops([
        stats.scans,
        stats.child_joins,
        stats.containment_joins,
        stats.fallback_steps,
    ]);
    metrics.record_axis_steps(&ev.step_stats());
    Ok((hits, compiled, stats))
}

/// The planned engine behind `QUERY`/`LABEL`: serve the cached response
/// when the document's generation still matches, otherwise plan, execute,
/// and cache the fresh rendering.
fn planned_cached(
    loaded: &LoadedDoc,
    doc_id: u64,
    xpath: &str,
    plan_cache: &ResultCache,
    metrics: &Metrics,
) -> Result<String, String> {
    if let Some(hit) = plan_cache.lookup(doc_id, xpath, loaded.generation) {
        return Ok((*hit).clone());
    }
    let (hits, _, _) = run_planned(loaded, xpath, metrics)?;
    let out = format_hits(loaded, &hits);
    plan_cache.insert(doc_id, xpath, loaded.generation, out.clone());
    Ok(out)
}

/// Runs `xpath` against a loaded document with the chosen axis provider;
/// returns the matches and the per-axis step counts of the evaluation.
///
/// Reads only — the scheme, index and document are all borrowed shared,
/// which is why any number of these can run at once.
pub fn run_query(
    loaded: &LoadedDoc,
    xpath: &str,
    engine: Engine,
) -> Result<(Vec<xmldom::NodeId>, xpath::StepStats), String> {
    match engine {
        Engine::Tree => {
            let ev =
                Evaluator::new(&loaded.doc, TreeAxes::with_order(&loaded.doc, &loaded.order));
            let hits = ev.query(xpath)?;
            Ok((hits, ev.step_stats()))
        }
        Engine::Ruid => {
            let ev = Evaluator::new(
                &loaded.doc,
                RuidAxes::with_order(&loaded.scheme, &loaded.order),
            );
            let hits = ev.query(xpath)?;
            Ok((hits, ev.step_stats()))
        }
        Engine::Indexed => {
            let ev = Evaluator::new(
                &loaded.doc,
                NameIndexed::new(
                    RuidAxes::with_order(&loaded.scheme, &loaded.order),
                    &loaded.doc,
                    &loaded.index,
                ),
            );
            let hits = ev.query(xpath)?;
            Ok((hits, ev.step_stats()))
        }
        Engine::Interval => {
            let ev = Evaluator::new(
                &loaded.doc,
                SpanAxes::with_order(loaded.interval.span_index(), "interval", &loaded.order),
            );
            let hits = ev.query(xpath)?;
            Ok((hits, ev.step_stats()))
        }
        Engine::Ancestry => {
            let ev = Evaluator::new(
                &loaded.doc,
                SpanAxes::with_order(loaded.ancestry.span_index(), "ancestry", &loaded.order),
            );
            let hits = ev.query(xpath)?;
            Ok((hits, ev.step_stats()))
        }
        Engine::Planned => {
            let ev = Evaluator::new(
                &loaded.doc,
                NameIndexed::new(
                    TreeAxes::with_order(&loaded.doc, &loaded.order),
                    &loaded.doc,
                    &loaded.index,
                ),
            );
            let (hits, _, _) = plan::planned_query(
                xpath,
                &loaded.doc,
                &loaded.summary,
                &loaded.order,
                &ev,
            )?;
            Ok((hits, ev.step_stats()))
        }
    }
}
