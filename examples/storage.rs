//! Identifier-sorted storage and table selection (Sections 2.1 and 4):
//! load a numbered document into the B+-tree-backed store, run point
//! lookups and area range scans, and compare a monolithic table against
//! global-index partitioned tables.
//!
//! Run with: `cargo run --release -p ruid --example storage`

use std::time::Instant;

use ruid::prelude::*;
use ruid::{PartitionedStore, XmlStore};

fn main() {
    let doc = ruid::xmark::generate(&ruid::xmark::XmarkConfig::scaled_to(60_000, 11));
    let root = doc.root_element().unwrap();
    let scheme = Ruid2Scheme::build(&doc, &PartitionConfig::by_depth(3));
    let n = doc.descendants(root).count();
    println!("document: {} nodes, {} UID-local areas", n, scheme.area_count());

    // Monolithic element table, keyed (global, local) — the paper's sort.
    let t = Instant::now();
    let mut store = XmlStore::in_memory();
    store.load_document(&doc, &scheme);
    println!(
        "loaded monolithic table in {:.2?} ({} pages of 4 KiB)",
        t.elapsed(),
        store.page_count()
    );

    // Point lookups by identifier.
    let labels: Vec<Ruid2> = doc
        .descendants(root)
        .step_by(37)
        .map(|nd| scheme.label_of(nd))
        .collect();
    let t = Instant::now();
    let mut found = 0usize;
    for l in &labels {
        found += usize::from(store.get(l).is_some());
    }
    println!(
        "{} point lookups in {:.2?} (all {} found)",
        labels.len(),
        t.elapsed(),
        found
    );

    // Area scans: one contiguous B+-tree range per area.
    let t = Instant::now();
    let mut rows = 0usize;
    for row in scheme.ktable().rows() {
        rows += store.scan_area(row.global).len();
    }
    println!("scanned every area in {:.2?} ({rows} rows; roots counted once)", t.elapsed());

    // Subtree retrieval for a mid-tree area: own area + frame descendants.
    let mid_area = scheme.ktable().rows()[scheme.area_count() / 2].global;
    let (subtree, scans) = store.scan_subtree(&scheme, mid_area);
    println!(
        "subtree of area {mid_area}: {} rows via {scans} range scans",
        subtree.len()
    );
    println!();

    // Partitioned tables (Section 4): the global index picks the file.
    println!("== table selection: monolithic vs {}-way partitioned ==", 8);
    let partitioned = PartitionedStore::load(&doc, &scheme, 8);
    println!(
        "{:>10} {:>12} {:>16}",
        "area", "rows", "tables touched"
    );
    let sample: Vec<u64> = scheme
        .ktable()
        .rows()
        .iter()
        .step_by(scheme.area_count() / 6 + 1)
        .map(|r| r.global)
        .collect();
    for g in sample {
        let (rows, touched) = partitioned.scan_subtree(&scheme, g);
        println!(
            "{g:>10} {:>12} {touched:>13}/{}",
            rows.len(),
            partitioned.table_count()
        );
    }
    println!();
    println!(
        "a subtree query opens only the tables its global-index range selects; \
         the rest of the document is never touched"
    );
}
