//! Structural update robustness (Fig. 1 and Section 3.2): how many existing
//! identifiers change when nodes are inserted, under the original UID,
//! Dewey, and rUID.
//!
//! Run with: `cargo run --release -p ruid --example structural_update`

use ruid::prelude::*;
use ruid::{DeweyScheme, UidScheme};

fn main() {
    // --- Part 1: the paper's Fig. 1, verbatim -----------------------------
    println!("== Fig. 1: a node is inserted between UID nodes 2 and 3 ==");
    let mut doc = Document::parse(
        "<n1><n2><n5><n14/></n5></n2><n3><n8><n23/></n8><n9><n26/><n27/></n9></n3></n1>",
    )
    .unwrap();
    let root = doc.root_element().unwrap();
    let mut uid = UidScheme::build_with_k(&doc, root, 3);
    println!("before: UIDs = {:?}", labels(&doc, &uid));
    let n2 = doc.first_child(root).unwrap();
    let new = doc.create_element("new");
    doc.insert_after(n2, new);
    let stats = uid.on_insert(&doc, new);
    println!("after : UIDs = {:?}", labels(&doc, &uid));
    println!(
        "        {} identifiers changed (the paper: nodes 3, 8, 9, 23, 26, 27 \
         become 4, 11, 12, 32, 35, 36)",
        stats.relabeled
    );
    println!();

    // --- Part 2: the same insertion under all three schemes, at scale -----
    println!("== Insertion near the root of an n-node document: identifiers relabelled ==");
    println!(
        "{:>8} {:>10} {:>10} {:>10}   (lower is better)",
        "nodes", "uid", "dewey", "ruid"
    );
    for &n in &[1_000usize, 5_000, 20_000] {
        let make = || {
            ruid::random_tree(&ruid::TreeGenConfig {
                nodes: n,
                max_fanout: 6,
                depth_bias: 0.1,
                seed: 7,
                ..Default::default()
            })
        };
        let uid_cost = {
            let mut doc = make();
            let mut scheme = UidScheme::build(&doc);
            insert_first_child_of_root(&mut doc, &mut scheme)
        };
        let dewey_cost = {
            let mut doc = make();
            let mut scheme = DeweyScheme::build(&doc);
            insert_first_child_of_root(&mut doc, &mut scheme)
        };
        let ruid_cost = {
            let mut doc = make();
            let mut scheme = Ruid2Scheme::build(&doc, &PartitionConfig::by_depth(3));
            insert_first_child_of_root(&mut doc, &mut scheme)
        };
        println!("{n:>8} {uid_cost:>10} {dewey_cost:>10} {ruid_cost:>10}");
    }
    println!();

    // --- Part 3: fan-out overflow ------------------------------------------
    println!("== Fan-out overflow: the k+1-th child arrives ==");
    let mut doc = ruid::random_tree(&ruid::TreeGenConfig {
        nodes: 5_000,
        max_fanout: 4,
        seed: 9,
        ..Default::default()
    });
    let root = doc.root_element().unwrap();
    let mut uid = UidScheme::build(&doc);
    let mut ruid2 = Ruid2Scheme::build(&doc, &PartitionConfig::by_depth(3));
    // Give some node its 5th child (max_fanout is 4).
    let full = doc
        .descendants(root)
        .find(|&nd| doc.children(nd).count() == 4)
        .expect("a node with maximal fan-out");
    let extra_uid = doc.create_element("extra");
    doc.append_child(full, extra_uid);
    let uid_stats = uid.on_insert(&doc, extra_uid);
    let ruid_stats = ruid2.on_insert(&doc, extra_uid);
    println!(
        "original UID : {} identifiers relabelled, full rebuild = {}",
        uid_stats.relabeled, uid_stats.full_rebuild
    );
    println!(
        "rUID         : {} identifiers relabelled, full rebuild = {} \
         (only the overflowing area was renumbered)",
        ruid_stats.relabeled, ruid_stats.full_rebuild
    );
}

fn labels(doc: &Document, uid: &UidScheme) -> Vec<u64> {
    doc.descendants(doc.root_element().unwrap())
        .map(|n| uid.label_of(n).to_u64().unwrap())
        .collect()
}

fn insert_first_child_of_root<S: NumberingScheme>(doc: &mut Document, scheme: &mut S) -> usize {
    let root = doc.root_element().unwrap();
    let first = doc.first_child(root).unwrap();
    let new = doc.create_element("new");
    doc.insert_before(first, new);
    scheme.on_insert(doc, new).relabeled
}
