//! Identifier scalability (Section 3.1 / Observation 1): the original UID's
//! identifiers explode like k^depth on recursive documents, while rUID's
//! per-level indices stay machine-word sized — and the multilevel
//! construction covers arbitrarily large trees.
//!
//! Run with: `cargo run --release -p ruid --example scalability`

use ruid::prelude::*;
use ruid::{kary, MultiRuidScheme, UidScheme};

fn main() {
    println!("== How deep can 64 bits go? (capacity of a complete k-ary tree) ==");
    println!("{:>8} {:>22}", "fan-out", "max depth in 64 bits");
    for k in [2u64, 4, 8, 16, 100, 1000] {
        let mut h = 0u32;
        while kary::capacity(k, h + 1).bits() <= 64 {
            h += 1;
        }
        println!("{k:>8} {h:>22}");
    }
    println!();

    println!("== 'High degree of recursion' trees (Observation 1) ==");
    println!(
        "{:>6} {:>6} {:>8} {:>16} {:>16}  {:>10}",
        "depth", "fanout", "nodes", "UID bits", "rUID bits", "area depth"
    );
    for (depth, fanout) in [(10usize, 4usize), (40, 4), (80, 4), (40, 8), (200, 3)] {
        let doc = ruid::deep_tree(depth, fanout);
        let root = doc.root_element().unwrap();
        let nodes = doc.descendants(root).count();
        let uid = UidScheme::build(&doc);
        // Keep the frame shallow enough for the κ-ary u64 enumeration: the
        // per-level budget rUID grades across the frame and the areas.
        let area_depth = depth.div_ceil(24).max(4);
        let ruid2 = Ruid2Scheme::build(&doc, &PartitionConfig::by_depth(area_depth));
        println!(
            "{depth:>6} {fanout:>6} {nodes:>8} {:>16} {:>16}  {area_depth:>10}",
            uid.bits_required(),
            ruid2.label_width_bits()
        );
    }
    println!();
    println!(
        "the original UID needs big-integer identifiers (its 'purpose-specific \
         libraries'); every rUID component fits a machine word"
    );
    println!();

    println!("== Multilevel rUID: levels needed as documents grow (Section 2.4) ==");
    println!("{:>9} {:>7} {:>8} {:>14}", "nodes", "levels", "areas", "tables bytes");
    for n in [1_000usize, 10_000, 100_000] {
        let doc = ruid::random_tree(&ruid::TreeGenConfig {
            nodes: n,
            max_fanout: 8,
            depth_bias: 0.2,
            seed: 5,
            ..Default::default()
        });
        // Cap the top frame at 64 areas so extra levels appear.
        let multi = MultiRuidScheme::build(&doc, &PartitionConfig::by_depth(2), 64);
        println!(
            "{n:>9} {:>7} {:>8} {:>14}",
            multi.levels(),
            multi.base().area_count(),
            multi.tables_memory_bytes()
        );
        // Round-trip sanity on a few labels.
        let root = doc.root_element().unwrap();
        for node in doc.descendants(root).step_by(n / 7 + 1) {
            let label = multi.label_of(node);
            assert_eq!(multi.node_of(&label), Some(node));
        }
    }
    println!();
    println!("\"In practice, this requires only a few levels to encode a large XML tree.\"");
}
