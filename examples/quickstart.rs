//! Quickstart: parse a document, build a 2-level rUID, inspect the global
//! parameters (κ and the table K), and navigate by pure label arithmetic.
//!
//! Run with: `cargo run --release -p ruid --example quickstart`

use ruid::prelude::*;

fn main() {
    let xml = r#"<library>
  <fiction>
    <book id="b1"><title>A</title><year>1998</year></book>
    <book id="b2"><title>B</title><year>2001</year></book>
  </fiction>
  <science>
    <book id="b3"><title>C</title><year>2002</year></book>
    <journal id="j1"><title>D</title></journal>
  </science>
</library>"#;

    let doc = Document::parse(xml).expect("well-formed XML");
    let root = doc.root_element().expect("root element");

    // Number the tree: UID-local areas every 2 levels.
    let scheme = Ruid2Scheme::build(&doc, &PartitionConfig::by_depth(2));

    println!("document nodes : {}", doc.descendants(root).count());
    println!("UID-local areas: {}", scheme.area_count());
    println!("frame fan-out κ: {}", scheme.kappa());
    println!();
    println!("table K (global, local-in-upper, fan-out):");
    for row in scheme.ktable().rows() {
        println!("  ({:>3}, {:>3}, {:>3})", row.global, row.local, row.fanout);
    }
    println!();

    println!("{:<32} rUID (global, local, root)", "node");
    for node in doc.descendants(root) {
        let label = scheme.label_of(node);
        let name = match doc.tag_name(node) {
            Some(tag) => {
                let id = doc.attribute(node, "id").map(|v| format!(" id={v}")).unwrap_or_default();
                format!("<{tag}{id}>")
            }
            None => format!("{:?}", doc.string_value(node)),
        };
        let depth = doc.depth(node) - 1;
        println!("{:<32} {label}", format!("{}{name}", "  ".repeat(depth)));
    }

    // Navigate from a leaf to the root using labels only: after κ and K are
    // in memory, rparent() needs no tree and no I/O (the paper's Fig. 6).
    let year = doc
        .descendants(root)
        .find(|&n| doc.tag_name(n) == Some("year"))
        .expect("a year element");
    println!();
    println!("ancestor chain of the first <year>, from labels alone:");
    let mut cur = scheme.label_of(year);
    print!("  {cur}");
    while let Some(parent) = scheme.rparent(&cur) {
        print!(" -> {parent}");
        cur = parent;
    }
    println!();

    // The same arithmetic answers ancestry without walking anything.
    let fiction = doc
        .descendants(root)
        .find(|&n| doc.tag_name(n) == Some("fiction"))
        .expect("fiction");
    let b2_title = doc
        .descendants(fiction)
        .find(|&n| doc.tag_name(n) == Some("title"))
        .expect("title");
    println!();
    println!(
        "is <fiction> an ancestor of its first <title>? {}",
        scheme.label_is_ancestor(&scheme.label_of(fiction), &scheme.label_of(b2_title))
    );
    println!(
        "is <fiction> an ancestor of the tree root?     {}",
        scheme.label_is_ancestor(&scheme.label_of(fiction), &scheme.label_of(root))
    );
}
