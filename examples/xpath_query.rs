//! XPath evaluation over the three axis providers — tree walking, original
//! UID, and rUID — on an XMark-style document, with wall-clock timings
//! (Observation 3 of the paper: rUID query speed is "quite competitive").
//!
//! Run with: `cargo run --release -p ruid --example xpath_query`

use std::time::Instant;

use ruid::prelude::*;
use ruid::UidScheme;

fn main() {
    let doc = ruid::xmark::generate(&ruid::xmark::XmarkConfig::scaled_to(50_000, 42));
    let root = doc.root_element().unwrap();
    println!("XMark-lite document: {} nodes", doc.descendants(root).count());

    let t = Instant::now();
    let uid_scheme = UidScheme::build(&doc);
    println!("built original UID   in {:>8.2?} (k = {})", t.elapsed(), uid_scheme.k());
    let t = Instant::now();
    let ruid_scheme = Ruid2Scheme::build(&doc, &PartitionConfig::by_depth(3));
    println!(
        "built 2-level rUID   in {:>8.2?} (κ = {}, {} areas)",
        t.elapsed(),
        ruid_scheme.kappa(),
        ruid_scheme.area_count()
    );
    println!();

    let queries = [
        "/regions/europe/item",
        "//item/name",
        "//item[@id='item7']",
        "//person[address]/name",
        "//open_auction[bidder/increase > 10]",
        "//bidder/personref",
        "//item[location = 'asia']",
        "//open_auction[count(bidder) >= 2]/current",
        "//category[2]",
        "//person[profile/@income > 50000]/emailaddress",
    ];

    let tree_eval = Evaluator::new(&doc, TreeAxes::new(&doc));
    let uid_eval = Evaluator::new(&doc, UidAxes::new(&uid_scheme));
    let ruid_eval = Evaluator::new(&doc, RuidAxes::new(&ruid_scheme));

    println!(
        "{:<48} {:>6} {:>12} {:>12} {:>12}",
        "query", "hits", "tree", "uid", "ruid"
    );
    for q in queries {
        let t = Instant::now();
        let a = tree_eval.query(q).unwrap();
        let tree_time = t.elapsed();
        let t = Instant::now();
        let b = uid_eval.query(q).unwrap();
        let uid_time = t.elapsed();
        let t = Instant::now();
        let c = ruid_eval.query(q).unwrap();
        let ruid_time = t.elapsed();
        assert_eq!(a, b, "uid evaluator must agree on {q}");
        assert_eq!(a, c, "ruid evaluator must agree on {q}");
        println!(
            "{:<48} {:>6} {:>12.2?} {:>12.2?} {:>12.2?}",
            q,
            a.len(),
            tree_time,
            uid_time,
            ruid_time
        );
    }
    println!();
    println!("all three evaluators returned identical node-sets for every query");
}
